"""Elastic rebalance overhead: the ``BENCH_elastic.json`` gate.

Elasticity is only worth shipping if the superstep-boundary handoff is
both *cheap* and *invisible*. This harness runs one fixed PageRank
microbenchmark three ways under latency realism — static membership,
scale-up mid-run, and scale-down mid-run — and guards two regressions:

* **cost** — the wall-clock spent inside ``cluster.rebalance`` (the
  checkpoint/restore handoff, as recorded by
  ``StatisticsCollector.record_rebalance``) must stay within
  ``max_overhead`` × one average static superstep. The handoff reuses
  the durability path, so this is the claim that joining or retiring a
  node costs about one superstep of progress, not a reload;
* **determinism** — both elastic runs' dumped outputs must be
  bit-identical to the static run's. Membership changes re-derive only
  the partition→node assignment; the partition *count* and therefore
  ``hash(vertex) % num_partitions`` never move (DESIGN.md §15).

The report is written to ``BENCH_elastic.json`` and committed, seeding
the elastic benchmark trajectory next to ``BENCH_parallel.json``.
"""

import json
import time

DEFAULT_VERTICES = 600
DEFAULT_ITERATIONS = 6
DEFAULT_NODES = 3
DEFAULT_IO_LATENCY_SCALE = 200.0
DEFAULT_REPEATS = 2
DEFAULT_MAX_OVERHEAD = 1.0
DEFAULT_GRAPH_SEED = 3
#: Superstep boundary at which the elastic runs resize.
DEFAULT_SCALE_SUPERSTEP = 3


def _run_once(vertices, iterations, num_nodes, io_latency_scale, graph_seed,
              scale_at=None):
    """One PageRank run; returns (elapsed, lines, outcome)."""
    from repro.algorithms import pagerank
    from repro.graphs.generators import btc_graph
    from repro.graphs.io import write_graph_to_dfs
    from repro.hdfs import MiniDFS
    from repro.hyracks.engine import HyracksCluster
    from repro.pregelix.runtime import PregelixDriver

    # Over-decomposition (2 partitions per initial node) keeps the
    # partition count fixed across resizes and gives a joining node a
    # deterministic share of the data to take over.
    cluster = HyracksCluster(
        num_nodes=num_nodes,
        io_latency_scale=io_latency_scale,
        virtual_partitions=2 * num_nodes,
    )
    try:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(
            dfs, "/in/g", iter(btc_graph(vertices, seed=graph_seed)),
            num_files=num_nodes,
        )
        driver = PregelixDriver(cluster, dfs)
        job = pagerank.build_job(iterations=iterations)
        started = time.perf_counter()
        outcome = driver.run(job, "/in/g", output_path="/out/r",
                             scale_at=scale_at)
        elapsed = time.perf_counter() - started
        lines = tuple(sorted(driver.read_output("/out/r")))
        return elapsed, lines, outcome
    finally:
        cluster.close()


def _measure(vertices, iterations, num_nodes, io_latency_scale, graph_seed,
             repeats, scale_at=None):
    """Best-of-``repeats`` for one membership schedule."""
    best = None
    best_outcome = None
    lines = None
    for _ in range(max(int(repeats), 1)):
        elapsed, run_lines, outcome = _run_once(
            vertices, iterations, num_nodes, io_latency_scale, graph_seed,
            scale_at=dict(scale_at) if scale_at else None,
        )
        if lines is not None and run_lines != lines:
            raise AssertionError(
                "schedule %r produced two different outputs across repeats"
                % (scale_at,)
            )
        lines = run_lines
        if best is None or elapsed < best:
            best = elapsed
            best_outcome = outcome
    rebalances = list(getattr(best_outcome.stats, "rebalances", ()))
    return {
        "seconds": round(best, 6),
        "supersteps": best_outcome.supersteps,
        "avg_superstep_seconds": round(
            best_outcome.avg_iteration_seconds, 6
        ),
        "rebalances": [
            {"superstep": step, "seconds": round(seconds, 6),
             "moved_partitions": moved}
            for step, seconds, moved in rebalances
        ],
        "rebalance_seconds": round(
            sum(seconds for _, seconds, _ in rebalances), 6
        ),
    }, lines


def run_elastic(
    vertices=DEFAULT_VERTICES,
    iterations=DEFAULT_ITERATIONS,
    num_nodes=DEFAULT_NODES,
    io_latency_scale=DEFAULT_IO_LATENCY_SCALE,
    repeats=DEFAULT_REPEATS,
    max_overhead=DEFAULT_MAX_OVERHEAD,
    graph_seed=DEFAULT_GRAPH_SEED,
    scale_superstep=DEFAULT_SCALE_SUPERSTEP,
):
    """Static vs scale-up vs scale-down; ``report["pass"]`` is the verdict.

    Passing means: both elastic runs actually rebalanced, both stayed
    bit-identical to the static run, and each run's total handoff time
    stayed within ``max_overhead`` × the static run's average superstep.
    """
    static, reference_lines = _measure(
        vertices, iterations, num_nodes, io_latency_scale, graph_seed, repeats
    )
    budget = max_overhead * static["avg_superstep_seconds"]
    scenarios = []
    for name, target in (
        ("scale-up", num_nodes + 1),
        ("scale-down", num_nodes - 1),
    ):
        if target < 1:
            continue
        result, lines = _measure(
            vertices, iterations, num_nodes, io_latency_scale, graph_seed,
            repeats, scale_at={scale_superstep: target},
        )
        result["scenario"] = name
        result["scale_at"] = {str(scale_superstep): target}
        result["bit_identical_to_static"] = lines == reference_lines
        result["overhead_vs_superstep"] = round(
            result["rebalance_seconds"] / budget * max_overhead, 3
        ) if budget else 0.0
        result["within_budget"] = result["rebalance_seconds"] <= budget
        scenarios.append(result)
    verdict = bool(
        scenarios
        and all(r["rebalances"] for r in scenarios)
        and all(r["bit_identical_to_static"] for r in scenarios)
        and all(r["within_budget"] for r in scenarios)
    )
    return {
        "benchmark": "elastic-rebalance-microbench",
        "algorithm": "pagerank",
        "config": {
            "vertices": vertices,
            "iterations": iterations,
            "nodes": num_nodes,
            "io_latency_scale": io_latency_scale,
            "graph_seed": graph_seed,
            "repeats": repeats,
            "scale_superstep": scale_superstep,
            "max_overhead": max_overhead,
        },
        "static": static,
        "scenarios": scenarios,
        "rebalance_budget_seconds": round(budget, 6),
        "pass": verdict,
    }


def write_report(report, path):
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def summary_lines(report):
    """Human-readable rendering of one elastic report."""
    static = report["static"]
    lines = [
        "elastic rebalance bench (%s, %d vertices, %d nodes, latency x%g):"
        % (
            report["algorithm"],
            report["config"]["vertices"],
            report["config"]["nodes"],
            report["config"]["io_latency_scale"],
        ),
        "  static: %.3fs total, %.3fs/superstep"
        % (static["seconds"], static["avg_superstep_seconds"]),
    ]
    for result in report["scenarios"]:
        lines.append(
            "  %s (to %s nodes at superstep %s): handoff %.3fs "
            "(%.2fx of one superstep) %s"
            % (
                result["scenario"],
                list(result["scale_at"].values())[0],
                list(result["scale_at"])[0],
                result["rebalance_seconds"],
                result["overhead_vs_superstep"],
                "bit-identical"
                if result["bit_identical_to_static"]
                else "OUTPUT DIVERGED",
            )
        )
    lines.append(
        "  verdict: %s (budget %.3fs = %.2fx avg superstep)"
        % (
            "PASS" if report["pass"] else "FAIL",
            report["rebalance_budget_seconds"],
            report["config"]["max_overhead"],
        )
    )
    return lines
