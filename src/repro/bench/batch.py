"""Multi-query batching bench: the ``BENCH_batch.json`` gate.

Eight SSSP point queries (different sources, same dataset) are run two
ways on the same cluster configuration:

* **solo** — eight back-to-back driver runs, each paying the full
  per-superstep join/group-by/redistribution cost alone (the serve
  layer's pre-§17 behaviour);
* **batched** — one :class:`~repro.pregelix.multiquery.MultiQueryProgram`
  run carrying all eight queries as lanes in shared supersteps.

Two regressions are guarded, for both sequential and ``--parallel 4``
execution:

* **performance** — batched throughput (queries per second) must stay
  ≥ ``min_speedup`` × solo;
* **equivalence** — every lane's result document must be *bit-identical*
  (digest-equal) to its solo counterpart within the same (budget,
  group-by, connector) class, and identical across the two parallelism
  modes (the §13 ordering contract extended to batched runs).
"""

import json
import time

DEFAULT_VERTICES = 360
DEFAULT_NODES = 3
DEFAULT_SOURCES = (0, 17, 42, 99, 140, 203, 271, 333)
DEFAULT_WORKERS = (1, 4)
DEFAULT_REPEATS = 2
DEFAULT_MIN_SPEEDUP = 2.0
DEFAULT_GRAPH_SEED = 9
#: latency realism is off by default: byte-proportional sleeps charge
#: message traffic (which batching cannot amortize — the lanes' message
#: volumes add up) at the same rate as the per-superstep scan/join costs
#: batching exists to share, diluting the effect under measurement.
DEFAULT_IO_LATENCY_SCALE = 0.0


def _fresh(parallelism, num_nodes, vertices, graph_seed, io_latency_scale):
    from repro.graphs.generators import btc_graph
    from repro.graphs.io import write_graph_to_dfs
    from repro.hdfs import MiniDFS
    from repro.hyracks.engine import HyracksCluster
    from repro.pregelix.runtime import PregelixDriver

    cluster = HyracksCluster(num_nodes=num_nodes, parallelism=parallelism,
                             io_latency_scale=io_latency_scale)
    dfs = MiniDFS(datanodes=cluster.node_ids())
    write_graph_to_dfs(
        dfs, "/in/g", iter(btc_graph(vertices, seed=graph_seed)),
        num_files=num_nodes,
    )
    return cluster, PregelixDriver(cluster, dfs)


def _solo_pass(driver, sources):
    """Eight solo runs back to back; returns (elapsed, per-query docs)."""
    from repro.algorithms import sssp
    from repro.serve.api import result_document

    docs = []
    started = time.perf_counter()
    for index, source in enumerate(sources):
        job = sssp.build_job(source_id=source)
        out = "/out/solo-%d" % index
        outcome = driver.run(
            job, "/in/g", output_path=out,
            parse_line=getattr(sssp, "parse_line", None),
            format_record=getattr(sssp, "format_record", None),
        )
        docs.append(
            result_document("sssp", job, outcome,
                            results=driver.read_output(out))
        )
    elapsed = time.perf_counter() - started
    return elapsed, docs


def _batched_pass(driver, sources):
    """One multi-query run; returns (elapsed, per-lane docs)."""
    from repro.algorithms import sssp
    from repro.pregelix.multiquery import MultiQueryProgram

    program = MultiQueryProgram(
        sssp, [{"source_id": source} for source in sources]
    )
    started = time.perf_counter()
    outcome, lane_lines = program.run(driver, "/in/g", "/out/batched")
    elapsed = time.perf_counter() - started
    docs = [
        program.lane_document(lane, "sssp", outcome, lane_lines[lane])
        for lane in range(len(sources))
    ]
    return elapsed, docs


def _measure_mode(parallelism, vertices, num_nodes, sources, graph_seed,
                  repeats, io_latency_scale):
    """Best-of-``repeats`` solo and batched timings at one parallelism."""
    from repro.serve.cache import result_digest

    best_solo = best_batched = None
    solo_digests = batched_digests = None
    for _ in range(max(int(repeats), 1)):
        cluster, driver = _fresh(parallelism, num_nodes, vertices,
                                 graph_seed, io_latency_scale)
        try:
            solo_elapsed, solo_docs = _solo_pass(driver, sources)
            batched_elapsed, batched_docs = _batched_pass(driver, sources)
        finally:
            cluster.close()
        run_solo = tuple(result_digest(doc) for doc in solo_docs)
        run_batched = tuple(result_digest(doc) for doc in batched_docs)
        if solo_digests is not None and (
            run_solo != solo_digests or run_batched != batched_digests
        ):
            raise AssertionError(
                "parallelism=%d produced different digests across repeats"
                % parallelism
            )
        solo_digests, batched_digests = run_solo, run_batched
        if best_solo is None or solo_elapsed < best_solo:
            best_solo = solo_elapsed
        if best_batched is None or batched_elapsed < best_batched:
            best_batched = batched_elapsed
    queries = len(sources)
    return {
        "parallelism": parallelism,
        "solo_seconds": round(best_solo, 6),
        "batched_seconds": round(best_batched, 6),
        "solo_queries_per_sec": round(queries / best_solo, 3),
        "batched_queries_per_sec": round(queries / best_batched, 3),
        "speedup": round(best_solo / best_batched, 3),
        "lanes_bit_identical_to_solo": batched_digests == solo_digests,
    }, solo_digests, batched_digests


def run_batch_bench(
    vertices=DEFAULT_VERTICES,
    num_nodes=DEFAULT_NODES,
    sources=DEFAULT_SOURCES,
    workers=DEFAULT_WORKERS,
    repeats=DEFAULT_REPEATS,
    min_speedup=DEFAULT_MIN_SPEEDUP,
    graph_seed=DEFAULT_GRAPH_SEED,
    io_latency_scale=DEFAULT_IO_LATENCY_SCALE,
):
    """Run the batch microbench at each parallelism; returns the report.

    ``report["pass"]`` is the CI verdict: every mode's lanes digest-equal
    to its solo runs, digests identical across modes (same bit-identity
    class), and every mode's batched throughput ≥ ``min_speedup`` × solo.
    """
    modes = []
    reference = None
    cross_mode_identical = True
    for parallelism in sorted(set(int(w) for w in workers)):
        mode, solo_digests, batched_digests = _measure_mode(
            parallelism, vertices, num_nodes, sources, graph_seed, repeats,
            io_latency_scale,
        )
        if reference is None:
            reference = solo_digests
        elif solo_digests != reference or batched_digests != reference:
            cross_mode_identical = False
        mode["bit_identical_across_modes"] = (
            solo_digests == reference and batched_digests == reference
        )
        modes.append(mode)
    verdict = bool(
        modes
        and cross_mode_identical
        and all(m["lanes_bit_identical_to_solo"] for m in modes)
        and all(m["speedup"] >= min_speedup for m in modes)
    )
    return {
        "benchmark": "multiquery-batch-microbench",
        "algorithm": "sssp",
        "config": {
            "queries": len(sources),
            "sources": list(sources),
            "vertices": vertices,
            "nodes": num_nodes,
            "graph_seed": graph_seed,
            "repeats": repeats,
            "min_speedup": min_speedup,
            "io_latency_scale": io_latency_scale,
            "workers": sorted(set(int(w) for w in workers)),
        },
        "modes": modes,
        "pass": verdict,
    }


def write_report(report, path):
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def summary_lines(report):
    """Human-readable rendering of one batch-bench report."""
    config = report["config"]
    lines = [
        "multi-query batch bench (%s, %d queries, %d vertices, %d nodes):"
        % (report["algorithm"], config["queries"], config["vertices"],
           config["nodes"]),
    ]
    for mode in report["modes"]:
        lines.append(
            "  parallel-%d: solo %.3fs (%.1f q/s) vs batched %.3fs "
            "(%.1f q/s) speedup %.2fx %s"
            % (
                mode["parallelism"],
                mode["solo_seconds"],
                mode["solo_queries_per_sec"],
                mode["batched_seconds"],
                mode["batched_queries_per_sec"],
                mode["speedup"],
                "bit-identical"
                if mode["lanes_bit_identical_to_solo"]
                else "LANES DIVERGED",
            )
        )
    lines.append(
        "  verdict: %s (threshold %.2fx in every mode)"
        % ("PASS" if report["pass"] else "FAIL", config["min_speedup"])
    )
    return lines
