"""Pregelix reproduction: Pregel as an iterative dataflow of relational operators.

A from-scratch Python implementation of the system described in
*"Pregelix: Big(ger) Graph Analytics on A Dataflow Engine"* (Bu, Borkar,
Jia, Carey, Condie - VLDB 2014), including the Hyracks-style dataflow
engine it runs on, a simulated HDFS, the four comparison systems of the
paper's evaluation, and a benchmark harness that regenerates every table
and figure. See DESIGN.md for the inventory and EXPERIMENTS.md for
paper-vs-measured results.

Typical usage::

    from repro.algorithms import pagerank
    from repro.graphs.generators import webmap_graph
    from repro.graphs.io import write_graph_to_dfs
    from repro.hdfs import MiniDFS
    from repro.hyracks.engine import HyracksCluster
    from repro.pregelix import PregelixDriver

    cluster = HyracksCluster(num_nodes=4)
    dfs = MiniDFS(datanodes=cluster.node_ids())
    write_graph_to_dfs(dfs, "/in", webmap_graph(2000))
    outcome = PregelixDriver(cluster, dfs).run(
        pagerank.build_job(iterations=10), "/in", output_path="/out"
    )

Subpackages
-----------
``repro.pregelix``
    The Pregel API, plan generator, driver, optimizer, fault tolerance.
``repro.hyracks``
    The dataflow engine: operators, connectors, scheduler, storage.
``repro.hdfs``
    The simulated distributed file system.
``repro.algorithms``
    Eleven built-in vertex programs.
``repro.baselines``
    Architecture-level models of Giraph, GraphLab, Hama, and GraphX.
``repro.graphs``
    Dataset generators, text/edge-list IO, samplers, NetworkX adapters.
``repro.bench``
    The evaluation harness regenerating the paper's tables and figures.
"""

__version__ = "0.1.0"
