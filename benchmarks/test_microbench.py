"""Classic micro-benchmarks of the storage and operator substrate.

These measure real Python wall time of the hot data structures (what
pytest-benchmark is built for), complementing the figure regenerations.
"""

import random

import pytest

from repro.common.accounting import IOCounters
from repro.common.serde import encode_key
from repro.common import serde
from repro.hyracks.storage.btree import BTree
from repro.hyracks.storage.buffer_cache import BufferCache
from repro.hyracks.storage.file_manager import FileManager
from repro.hyracks.storage.lsm_btree import LSMBTree

N = 2000


@pytest.fixture
def cache(tmp_path):
    files = FileManager(str(tmp_path / "n0"), IOCounters())
    yield BufferCache(1 << 22, 4096, files)
    files.destroy()


def loaded_btree(cache, n=N):
    tree = BTree(cache)
    tree.bulk_load((encode_key(i), b"v%08d" % i) for i in range(n))
    return tree


def test_btree_random_inserts(cache, benchmark):
    ids = list(range(N))
    random.Random(1).shuffle(ids)

    def insert_all():
        tree = BTree(cache)
        for i in ids:
            tree.insert(encode_key(i), b"value-%08d" % i)
        return tree

    tree = benchmark.pedantic(insert_all, rounds=3, iterations=1)
    assert len(tree) == N


def test_btree_point_lookups(cache, benchmark):
    tree = loaded_btree(cache)
    keys = [encode_key(i) for i in range(0, N, 7)]

    def lookups():
        return sum(1 for key in keys if tree.lookup(key) is not None)

    assert benchmark(lookups) == len(keys)


def test_btree_full_scan(cache, benchmark):
    tree = loaded_btree(cache)

    def scan():
        return sum(1 for _ in tree.scan())

    assert benchmark(scan) == N


def test_btree_bulk_load(cache, benchmark):
    pairs = [(encode_key(i), b"v%08d" % i) for i in range(N)]

    def load():
        tree = BTree(cache)
        tree.bulk_load(pairs)
        return tree

    tree = benchmark.pedantic(load, rounds=3, iterations=1)
    assert len(tree) == N


def test_lsm_insert_heavy(cache, benchmark):
    def churn():
        lsm = LSMBTree(cache, memory_budget_bytes=1 << 14)
        for i in range(N):
            lsm.insert(encode_key(i % 500), b"v%08d" % i)
        return lsm

    lsm = benchmark.pedantic(churn, rounds=3, iterations=1)
    assert lsm.lookup(encode_key(3)) is not None


def test_serde_vertex_roundtrip(benchmark):
    from repro.pregelix.types import VertexRecord, encode_vertex, decode_vertex, vertex_value_serde

    codec = vertex_value_serde(serde.FLOAT64, serde.FLOAT64)
    record = VertexRecord(vid=7, halt=False, value=0.5, edges=[(i, 1.0) for i in range(10)])

    def roundtrip():
        return decode_vertex(codec, 7, encode_vertex(codec, record))

    assert benchmark(roundtrip).vid == 7


def test_external_sort_with_spill(tmp_path, benchmark):
    from repro.hyracks.engine import HyracksCluster, JobContext, TaskContext
    from repro.hyracks.operators.sort import ExternalSortOperator

    cluster = HyracksCluster(num_nodes=1, root_dir=str(tmp_path / "c"))
    ctx = TaskContext(cluster.nodes["node0"], JobContext("bench"), 0, 1)
    pair = serde.PairSerde(serde.INT64, serde.FLOAT64)
    data = [(i * 2654435761 % N, float(i)) for i in range(N)]
    op = ExternalSortOperator(lambda t: encode_key(t[0]), pair, memory_limit_bytes=1 << 12)

    def sort():
        return op.run(ctx, 0, [list(data)])[op.OUT]

    result = benchmark.pedantic(sort, rounds=3, iterations=1)
    assert len(result) == N
    cluster.close()
