"""Figure 12: speedup and scale-up."""

from repro.bench.figures import MACHINE_LADDER, figure12a, figure12b, figure12c


def numeric(points):
    return {x: y for x, y in points if y != "FAIL"}


def test_figure12a_pregelix_speedup(env, benchmark):
    series = benchmark.pedantic(
        lambda: figure12a(env, sizes=("x-small", "small", "medium")),
        rounds=1,
        iterations=1,
    )
    ideal = numeric(series["ideal"])
    for size in ("x-small", "small", "medium"):
        points = numeric(series[size])
        # Monotonically improving with machines, never much worse than
        # ideal (the paper's "close to but slightly worse").
        values = [points[m] for m in MACHINE_LADDER]
        assert values == sorted(values, reverse=True)
        for machines in MACHINE_LADDER[1:]:
            assert points[machines] <= ideal[machines] * 1.45
    # The in-memory-at-all-cluster-sizes dataset tracks the ideal line
    # from below within 15% (larger sizes cross the out-of-core boundary
    # at 8 machines, which makes their speedups super-linear — a
    # documented deviation, see EXPERIMENTS.md).
    points = numeric(series["x-small"])
    for machines in MACHINE_LADDER[1:]:
        assert points[machines] >= ideal[machines] * 0.85


def test_figure12b_speedup_comparison(env, benchmark):
    series = benchmark.pedantic(lambda: figure12b(env), rounds=1, iterations=1)
    ideal = numeric(series["ideal"])
    pregelix = numeric(series["pregelix"])
    # Pregelix runs at every machine count; near-ideal speedup.
    assert len(pregelix) == len(MACHINE_LADDER)
    assert pregelix[32] <= ideal[32] * 1.3
    # Giraph cannot run Webmap-X-Small on 8 machines (paper text).
    giraph = dict(series["giraph-mem"])
    assert giraph[8] == "FAIL"
    # The baselines exhibit super-linear speedups (the paper explains
    # them by super-linear degradation with per-node data volume).
    for system in ("giraph-mem", "graphlab"):
        points = numeric(series[system])
        machines = sorted(points)
        if len(machines) >= 2:
            first, last = machines[0], machines[-1]
            assert points[last] < (first / last) * 1.0  # better than ideal


def test_figure12c_pregelix_scaleup(env, benchmark):
    series = benchmark.pedantic(lambda: figure12c(env), rounds=1, iterations=1)
    for workload in ("pagerank", "sssp", "cc"):
        points = numeric(series[workload])
        # Relative per-iteration time stays near 1.0: within 30% of
        # ideal at full scale (network overhead keeps it above 1).
        assert 0.7 <= points[1.0] <= 1.3
    # SSSP sends the fewest messages, so it is closest to the ideal.
    deviations = {
        workload: abs(numeric(series[workload])[1.0] - 1.0)
        for workload in ("pagerank", "sssp", "cc")
    }
    assert deviations["sssp"] == min(deviations.values())
