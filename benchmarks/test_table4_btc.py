"""Table 4: the BTC dataset and its samples/scale-ups."""

import pytest


def test_table4_btc(env, benchmark):
    from repro.bench.figures import table4

    rows = benchmark.pedantic(lambda: table4(env), rounds=1, iterations=1)
    sizes = [row["size_bytes"] for row in rows]
    assert sizes == sorted(sizes, reverse=True)
    # The defining Table 4 property: constant average degree across the
    # samples and scale-ups (8.94 in the paper), except Tiny (5.64).
    degrees = {row["name"]: row["avg_degree"] for row in rows}
    for name in ("large", "medium", "small", "x-small"):
        assert degrees[name] == pytest.approx(8.94, rel=0.05)
    assert degrees["tiny"] == pytest.approx(5.64, rel=0.1)
    # Scale-ups are exact copies: Small is 2x X-Small, Medium 3x, Large 4x.
    by_name = {row["name"]: row for row in rows}
    for name, factor in (("small", 2), ("medium", 3), ("large", 4)):
        assert by_name[name]["num_vertices"] == factor * by_name["x-small"]["num_vertices"]
        assert by_name[name]["num_edges"] == factor * by_name["x-small"]["num_edges"]
