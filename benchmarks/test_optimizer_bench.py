"""The cost-based optimizer vs the static plans (paper Section 9).

The paper's closing claim: the Figure 14/15 tradeoffs are "evidence that
an optimizer is ultimately essential to identify the best physical
plan". This bench runs SSSP across the BTC ladder on the 8-machine
configuration (where the join tradeoff is starkest) under three
configurations — static FOJ, static LOJ, and the auto-optimizer — and
asserts the optimizer lands near the per-point winner without being told
the workload.
"""

from repro.algorithms import sssp
from repro.bench.harness import run_pregelix
from repro.bench.reporting import print_series
from repro.pregelix import JoinStrategy

SIZES = ("tiny", "x-small", "small", "medium")


def run_sweep(env):
    series = {"static-foj": [], "static-loj": [], "auto-optimizer": []}
    for size in SIZES:
        foj = run_pregelix(
            env,
            sssp.build_job(source_id=0, join_strategy=JoinStrategy.FULL_OUTER),
            "btc",
            size,
            paper_machines=8,
            system_label="static-foj",
        )
        loj = run_pregelix(
            env,
            sssp.build_job(source_id=0),
            "btc",
            size,
            paper_machines=8,
            system_label="static-loj",
        )
        auto = run_pregelix(
            env,
            sssp.build_job(
                source_id=0,
                join_strategy=JoinStrategy.FULL_OUTER,
                auto_optimize=True,
            ),
            "btc",
            size,
            paper_machines=8,
            system_label="auto-optimizer",
        )
        series["static-foj"].append(foj.point("sim_avg_iteration_seconds"))
        series["static-loj"].append(loj.point("sim_avg_iteration_seconds"))
        series["auto-optimizer"].append(auto.point("sim_avg_iteration_seconds"))
    print_series(
        "Optimizer vs static plans: SSSP on BTC, 8-machine cluster", series
    )
    return series


def test_optimizer_tracks_best_static_plan(env, benchmark):
    series = benchmark.pedantic(lambda: run_sweep(env), rounds=1, iterations=1)
    foj = dict(series["static-foj"])
    loj = dict(series["static-loj"])
    auto = dict(series["auto-optimizer"])
    for ratio in foj:
        best = min(foj[ratio], loj[ratio])
        worst = max(foj[ratio], loj[ratio])
        # Within ~75% of the winner everywhere (it pays the first few
        # supersteps of full-outer exploration before the live-fraction
        # estimate converges and it switches)...
        assert auto[ratio] <= best * 1.75
        # ...and decisively better than the loser wherever the plans
        # diverge by 2x or more.
        if worst > 2 * best:
            assert auto[ratio] < worst * 0.7
