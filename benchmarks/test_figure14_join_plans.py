"""Figure 14: index full outer join vs index left outer join.

The paper's 8-machine sweep: LOJ is much faster for message-sparse SSSP
(and the gap widens out-of-core), FOJ wins for message-intensive
PageRank, and the two plans converge on CC.
"""

from repro.bench.figures import figure14


def numeric(series, label):
    return {x: y for x, y in series[label] if y != "FAIL"}


def test_figure14a_sssp(env, benchmark):
    series = benchmark.pedantic(
        lambda: figure14(env, "sssp"), rounds=1, iterations=1
    )
    foj = numeric(series, "full-outer-join")
    loj = numeric(series, "left-outer-join")
    ratios = sorted(foj)
    # LOJ wins beyond the smallest ratio, by a growing margin.
    gains = [foj[x] / loj[x] for x in ratios[1:]]
    assert all(g > 1.3 for g in gains)
    assert gains[-1] >= gains[0]
    assert max(gains) > 2.5  # paper's chart shows ~3-4x at the right edge


def test_figure14b_pagerank(env, benchmark):
    series = benchmark.pedantic(
        lambda: figure14(env, "pagerank", sizes=("tiny", "x-small", "small")),
        rounds=1,
        iterations=1,
    )
    foj = numeric(series, "full-outer-join")
    loj = numeric(series, "left-outer-join")
    # The full outer join plan is the winner for message-intensive
    # PageRank at every size (probing is not worth it when most leaf
    # data qualifies).
    for x in foj:
        assert foj[x] < loj[x]


def test_figure14c_cc(env, benchmark):
    series = benchmark.pedantic(
        lambda: figure14(env, "cc", sizes=("tiny", "x-small", "small")),
        rounds=1,
        iterations=1,
    )
    foj = numeric(series, "full-outer-join")
    loj = numeric(series, "left-outer-join")
    # CC starts message-dense and sparsifies, so the two plans end up
    # with similar performance (within ~2x everywhere).
    for x in foj:
        ratio = foj[x] / loj[x]
        assert 0.5 < ratio < 2.5
