"""Figure 13: multi-user throughput (jobs per hour vs concurrency)."""

from repro.bench.figures import figure13


def pregelix_jph(panel):
    return {jobs: jph for jobs, jph in panel["series"]["pregelix"]}


def test_figure13_throughput(env, benchmark):
    panels = benchmark.pedantic(
        lambda: figure13(env, sizes=("x-small", "small", "medium", "large")),
        rounds=1,
        iterations=1,
    )
    # (a) X-Small, always in-memory: concurrency raises jph.
    xsmall = pregelix_jph(panels["x-small"])
    assert xsmall[2] > xsmall[1]
    # (b) Small, in-memory to minor disk usage: still higher jph.
    small = pregelix_jph(panels["small"])
    assert small[2] > small[1]
    # (c) Medium: the in-memory-to-disk boundary — jph DROPS with the
    # second concurrent job (the paper's significant-I/O cliff).
    medium = pregelix_jph(panels["medium"])
    assert medium[2] < medium[1]
    # The cliff is real I/O: per-job disk traffic grows with concurrency.
    io = dict(panels["medium"]["per_job_io_bytes"])
    assert io[2] > 1.3 * io[1]
    # (d) Large, always disk-based: concurrency raises utilization + jph.
    large = pregelix_jph(panels["large"])
    assert large[2] > large[1]
    # The baselines cannot sustain concurrent jobs in any panel.
    for size, panel in panels.items():
        for system in ("giraph-mem", "graphlab", "hama"):
            values = dict(panel["series"][system])
            assert values[2] == "FAIL" and values[3] == "FAIL"
        # GraphX's admission control serializes jobs: flat jph when it
        # can run the dataset at all.
        graphx = dict(panel["series"]["graphx"])
        if graphx[1] != "FAIL":
            assert graphx[2] == graphx[1]
