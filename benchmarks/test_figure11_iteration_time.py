"""Figure 11: average per-iteration time vs dataset/RAM, all systems.

Shape assertions reproduce Section 7.2's relative claims: GraphLab is
the fastest per-iteration engine on the smallest data; Giraph beats
Pregelix on small in-memory PageRank but loses once data grows; the
Pregelix *default* (full-outer-join) plan beats Giraph on message-sparse
SSSP by several-fold even in memory.
"""

from conftest import fail_ratios, series_values

from repro.bench.figures import figure11


def test_figure11a_pagerank_webmap(time_sweeps, benchmark):
    series = benchmark.pedantic(
        lambda: figure11(time_sweeps["pagerank"], "pagerank"), rounds=1, iterations=1
    )
    pregelix = dict(series["pregelix"])
    giraph = dict(series["giraph-mem"])
    graphlab = dict(series["graphlab"])
    smallest = min(pregelix)
    # GraphLab is fastest per-iteration on the smallest dataset (up to
    # 5x faster than Pregelix in the paper).
    assert graphlab[smallest] < pregelix[smallest]
    assert pregelix[smallest] / graphlab[smallest] < 6
    # Giraph is up to ~2x faster than Pregelix on small in-memory data.
    assert giraph[smallest] < pregelix[smallest] < 3 * giraph[smallest]
    # At the largest ratio both survive, Pregelix wins (paper: ~2x).
    shared = [x for x, y in series["giraph-mem"] if y != "FAIL"]
    largest_shared = max(shared)
    assert pregelix[largest_shared] < giraph[largest_shared]


def test_figure11b_sssp_btc(time_sweeps, benchmark):
    series = benchmark.pedantic(
        lambda: figure11(time_sweeps["sssp"], "sssp"), rounds=1, iterations=1
    )
    pregelix = dict(series["pregelix"])
    giraph = dict(series["giraph-mem"])
    # The default plan gives a multi-x per-iteration speedup over Giraph
    # on message-sparse SSSP (paper: up to 7x) at every shared point
    # past the smallest.
    shared = sorted(x for x, y in series["giraph-mem"] if y != "FAIL")
    speedups = [giraph[x] / pregelix[x] for x in shared]
    assert all(s > 1.5 for s in speedups)
    assert max(speedups) > 4
    # Giraph's size-scaling curve is steeper than Pregelix's.
    giraph_growth = giraph[shared[-1]] / giraph[shared[0]]
    pregelix_growth = pregelix[shared[-1]] / pregelix[shared[0]]
    assert giraph_growth > pregelix_growth


def test_figure11c_cc_btc(time_sweeps, benchmark):
    series = benchmark.pedantic(
        lambda: figure11(time_sweeps["cc"], "cc"), rounds=1, iterations=1
    )
    # Both Pregelix and Giraph run in-memory CC at comparable speed
    # ("both systems perform similarly fast"): within ~4x at every
    # shared point, with Pregelix ahead once data grows.
    pregelix = dict(series["pregelix"])
    giraph = dict(series["giraph-mem"])
    shared = sorted(x for x, y in series["giraph-mem"] if y != "FAIL")
    for x in shared:
        ratio = pregelix[x] / giraph[x]
        assert 0.2 < ratio < 4.0
    assert not fail_ratios(series, "pregelix")
    assert series_values(series, "pregelix")  # non-empty sanity
