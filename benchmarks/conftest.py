"""Shared state for the figure/table regeneration benchmarks.

One :class:`~repro.bench.harness.ExperimentEnv` is built per session: it
materializes every dataset of Tables 3 and 4 once, and each benchmark
draws its measurements from it. Run with::

    pytest benchmarks/ --benchmark-only -s

(`-s` shows the regenerated paper-style tables and series).
"""

import pytest

from repro.bench.harness import ExperimentEnv


@pytest.fixture(scope="session")
def env():
    return ExperimentEnv(num_nodes=4)


@pytest.fixture(scope="session")
def time_sweeps(env):
    """The Figure 10/11 measurement sweeps, computed once per session."""
    from repro.bench.figures import run_time_sweep

    return {
        workload: run_time_sweep(env, workload)
        for workload in ("pagerank", "sssp", "cc")
    }


def series_values(series, system):
    """The numeric (non-FAIL) y-values of one figure series."""
    return [y for _x, y in series[system] if y != "FAIL"]


def fail_ratios(series, system):
    """The x positions at which one system reports FAIL."""
    return [x for x, y in series[system] if y == "FAIL"]
