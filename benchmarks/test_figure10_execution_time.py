"""Figure 10: overall execution time vs dataset/RAM, all systems.

Shape assertions reproduce the caption: neither Giraph mode works past
~0.15, GraphLab fails past ~0.07, Hama fails on even smaller datasets,
GraphX cannot load BTC-Tiny — and Pregelix completes everywhere.
"""

from conftest import fail_ratios, series_values

from repro.bench.figures import figure10


def _series(time_sweeps, workload):
    return figure10(time_sweeps[workload], workload)


def test_figure10a_pagerank_webmap(time_sweeps, benchmark):
    series = benchmark.pedantic(
        lambda: _series(time_sweeps, "pagerank"), rounds=1, iterations=1
    )
    assert not fail_ratios(series, "pregelix")  # scales to out-of-core
    # Giraph (both modes) dies only past ~0.15.
    for system in ("giraph-mem", "giraph-ooc"):
        failed = fail_ratios(series, system)
        assert failed and min(failed) > 0.15
    # GraphLab dies past ~0.07.
    failed = fail_ratios(series, "graphlab")
    assert failed and 0.07 < min(failed) < 0.15
    # Hama fails on even smaller datasets than GraphLab.
    assert min(fail_ratios(series, "hama")) < min(fail_ratios(series, "graphlab"))
    # Execution time grows with data for every surviving system.
    for system in ("pregelix", "giraph-mem"):
        values = series_values(series, system)
        assert values == sorted(values)


def test_figure10b_sssp_btc(time_sweeps, benchmark):
    series = benchmark.pedantic(
        lambda: _series(time_sweeps, "sssp"), rounds=1, iterations=1
    )
    assert not fail_ratios(series, "pregelix")
    for system in ("giraph-mem", "giraph-ooc"):
        failed = fail_ratios(series, system)
        assert failed and min(failed) > 0.15
    failed = fail_ratios(series, "graphlab")
    assert failed and 0.07 < min(failed) < 0.15
    # GraphX fails to load even BTC-Tiny (the caption's observation).
    assert len(fail_ratios(series, "graphx")) == len(series["graphx"])


def test_figure10c_cc_btc(time_sweeps, benchmark):
    series = benchmark.pedantic(
        lambda: _series(time_sweeps, "cc"), rounds=1, iterations=1
    )
    assert not fail_ratios(series, "pregelix")
    for system in ("giraph-mem", "giraph-ooc"):
        assert min(fail_ratios(series, system)) > 0.15
    assert len(fail_ratios(series, "graphx")) == len(series["graphx"])
    # Hama survives only the smallest BTC sample.
    assert len(fail_ratios(series, "hama")) == len(series["hama"]) - 1
