"""Section 7.6: software simplicity (lines of code)."""

from repro.bench.figures import section76_loc


def test_section76_loc(benchmark):
    report = benchmark.pedantic(section76_loc, rounds=1, iterations=1)
    # The Pregel-specific layer is a fraction of the infrastructure a
    # custom-constructed runtime must own (the paper's Giraph-core is
    # 3.8x the Pregelix core).
    assert report["pregelix_core"] > 0
    assert report["leveraged_infrastructure"] > report["pregelix_core"]
    total = report["pregelix_core"] + report["leveraged_infrastructure"]
    assert total / report["pregelix_core"] > 2.0
