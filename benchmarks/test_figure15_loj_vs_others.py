"""Figure 15: the Pregelix left-outer-join plan vs the other systems.

SSSP on BTC at two cluster sizes: Pregelix-LOJ beats Giraph by up to
~15x per iteration near Giraph's failure boundary; GraphLab is fastest
on the smallest data but degrades steeply and dies early; GraphX is
absent (cannot load any BTC sample); Hama survives only the smallest.
"""

from repro.bench.figures import figure15

SIZES = ("tiny", "x-small", "small", "medium")


def numeric(points):
    return {x: y for x, y in points if y != "FAIL"}


def run(env, machines):
    return figure15(env, paper_machines=machines, sizes=SIZES)


def check_shape(series):
    loj = numeric(series["pregelix-loj"])
    giraph = numeric(series["giraph-mem"])
    assert len(loj) == len(SIZES)  # Pregelix-LOJ completes everywhere
    shared = sorted(set(loj) & set(giraph))
    speedups = [giraph[x] / loj[x] for x in shared]
    assert all(s > 2 for s in speedups)
    assert max(speedups) > 8  # paper: "up to 15x"
    # GraphLab: best at the smallest ratio, then degrades and dies.
    graphlab = numeric(series["graphlab"])
    smallest = min(loj)
    assert graphlab[smallest] < loj[smallest]
    assert len(graphlab) < len(SIZES)
    # Hama runs only the smallest sample.
    assert len(numeric(series["hama"])) == 1


def test_figure15a_24_machines(env, benchmark):
    series = benchmark.pedantic(lambda: run(env, 24), rounds=1, iterations=1)
    check_shape(series)


def test_figure15b_32_machines(env, benchmark):
    series = benchmark.pedantic(lambda: run(env, 32), rounds=1, iterations=1)
    check_shape(series)
