"""Table 3: the Webmap dataset and its samples."""


def test_table3_webmap(env, benchmark):
    rows = benchmark.pedantic(
        lambda: __import__("repro.bench.figures", fromlist=["table3"]).table3(env),
        rounds=1,
        iterations=1,
    )
    # Large .. Tiny, strictly shrinking like the paper's ladder.
    sizes = [row["size_bytes"] for row in rows]
    assert sizes == sorted(sizes, reverse=True)
    vertices = [row["num_vertices"] for row in rows]
    assert vertices == sorted(vertices, reverse=True)
    # The simulated ladder preserves the paper's relative sizes within 15%.
    large = rows[0]
    for row in rows[1:]:
        ours = row["size_bytes"] / large["size_bytes"]
        paper = row["paper_size_gb"] / large["paper_size_gb"]
        assert abs(ours - paper) / paper < 0.15
    # Average degrees track Table 3's within 30% (generators are random).
    for row in rows:
        assert abs(row["avg_degree"] - row["paper_avg_degree"]) / row["paper_avg_degree"] < 0.35
