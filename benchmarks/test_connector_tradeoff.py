"""Section 7.5's connector tradeoff (tech report [13], figure 9).

The m-to-n partitioning *merging* connector is slightly faster on small
clusters (no receiver-side re-grouping) but loses on larger clusters,
where merging must coordinate one sorted stream per sender.
"""

from repro.bench.figures import connector_tradeoff


def test_connector_tradeoff(env, benchmark):
    series = benchmark.pedantic(
        lambda: connector_tradeoff(env), rounds=1, iterations=1
    )
    unmerged = {x: y for x, y in series["m-to-n-partitioning"] if y != "FAIL"}
    merged = {
        x: y for x, y in series["m-to-n-partitioning-merging"] if y != "FAIL"
    }
    machines = sorted(unmerged)
    smallest, largest = machines[0], machines[-1]
    # Merging wins (or ties) on the smallest cluster...
    assert merged[smallest] <= unmerged[smallest] * 1.05
    # ...and loses on the largest.
    assert merged[largest] > unmerged[largest]
    # The relative cost of merging grows monotonically with cluster size.
    relative = [merged[m] / unmerged[m] for m in machines]
    assert relative == sorted(relative)
