"""Ablations of the DESIGN.md design choices beyond the paper's figures.

* group-by strategy x connector: all four produce identical results;
* vertex storage: B-tree vs LSM B-tree under the mutation-heavy
  Genomix-style path-merging workload;
* buffer cache size: the in-memory-to-out-of-core crossover;
* checkpointing: overhead of enabling per-superstep checkpoints.
"""

import itertools

from repro.algorithms import graph_cleaning, pagerank, sssp
from repro.bench.harness import run_pregelix
from repro.graphs.io import write_graph_to_dfs
from repro.graphs.generators import de_bruijn_path_graph
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import (
    ConnectorPolicy,
    GroupByStrategy,
    PregelixDriver,
    VertexStorage,
)


def test_groupby_strategy_ablation(env, benchmark):
    """4 group-by/connector combos: identical answers, different work."""

    def sweep():
        results = {}
        for strategy, policy in itertools.product(GroupByStrategy, ConnectorPolicy):
            job = pagerank.build_job(
                iterations=5, groupby_strategy=strategy
            )
            job.connector_policy = policy
            m = run_pregelix(
                env,
                job,
                "webmap",
                "x-small",
                system_label="%s/%s" % (strategy.value, policy.value),
            )
            results[(strategy, policy)] = m
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(m.ok for m in results.values())
    supersteps = {m.supersteps for m in results.values()}
    assert len(supersteps) == 1  # identical convergence


def test_storage_ablation_mutation_heavy(benchmark):
    """LSM B-tree vs B-tree under Genomix-style path merging.

    The paper recommends the LSM B-tree for mutation-heavy workloads;
    both must produce the identical cleaned graph, with the LSM variant
    turning the mutation churn into sequential component writes.
    """

    def run_with(storage):
        cluster = HyracksCluster(num_nodes=2)
        try:
            dfs = MiniDFS(datanodes=cluster.node_ids())
            write_graph_to_dfs(
                dfs, "/in/genome", de_bruijn_path_graph(6, 8, seed=4), num_files=2
            )
            driver = PregelixDriver(cluster, dfs)
            job = graph_cleaning.build_job(vertex_storage=storage)
            driver.run(
                job,
                "/in/genome",
                output_path="/out/clean",
                parse_line=graph_cleaning.parse_line,
                format_record=graph_cleaning.format_record,
            )
            lines = sorted(driver.read_output("/out/clean"))
            io_bytes = sum(
                node.io.disk_write_bytes for node in cluster.nodes.values()
            )
            return lines, io_bytes
        finally:
            cluster.close()

    def both():
        return run_with(VertexStorage.BTREE), run_with(VertexStorage.LSM_BTREE)

    (btree_lines, _btree_io), (lsm_lines, _lsm_io) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    assert btree_lines == lsm_lines  # identical cleaned graph


def test_buffercache_crossover(env, benchmark):
    """Shrinking the buffer cache moves PageRank from memory to disk.

    The sim-time disk component should be ~zero with a big cache and
    dominate with a tiny one — the graceful degradation the paper's
    out-of-core story depends on.
    """
    from repro.hyracks.engine import HyracksCluster
    from repro.pregelix import PregelixDriver
    from repro.bench.harness import pregelix_sim_seconds

    spec, path, _nbytes = env.dataset("webmap", "x-small")
    node_memory = env.node_memory("webmap")

    def run_with_cache(fraction):
        cluster = HyracksCluster(
            num_nodes=env.num_nodes,
            node_memory_bytes=node_memory,
            buffer_cache_bytes=max(int(node_memory * fraction), 8 * 4096),
        )
        try:
            driver = PregelixDriver(cluster, env.dfs)
            job = pagerank.build_job(iterations=5)
            outcome = driver.run(job, path)
            scale = spec.paper_vertices / spec.num_vertices
            _load, _steps, totals = pregelix_sim_seconds(
                env, outcome, job, 32, path, scale
            )
            return totals  # (cpu, disk, net)
        finally:
            cluster.close()

    def sweep():
        return {fraction: run_with_cache(fraction) for fraction in (0.55, 0.02)}

    totals = benchmark.pedantic(sweep, rounds=1, iterations=1)
    disk = {fraction: t[1] for fraction, t in totals.items()}
    # A generous cache keeps the sweep (near-)memory-resident; a tiny
    # one pays paged I/O for the whole index every superstep. (LRU under
    # a cyclic scan degrades to full misses as soon as the working set
    # exceeds the cache, so intermediate sizes plateau — the classic
    # sequential-flooding behaviour.)
    assert disk[0.02] > 5 * max(disk[0.55], 1e-9)


def test_checkpoint_overhead(benchmark):
    """Per-superstep checkpointing costs extra time but not correctness."""

    def run_with(checkpoint_interval):
        cluster = HyracksCluster(num_nodes=2)
        try:
            dfs = MiniDFS(datanodes=cluster.node_ids())
            from repro.graphs.generators import btc_graph

            write_graph_to_dfs(dfs, "/in/g", btc_graph(400, seed=3), num_files=2)
            driver = PregelixDriver(cluster, dfs)
            job = sssp.build_job(source_id=0, checkpoint_interval=checkpoint_interval)
            outcome = driver.run(job, "/in/g", output_path="/out/g")
            return sorted(driver.read_output("/out/g")), outcome.total_seconds
        finally:
            cluster.close()

    def both():
        return run_with(None), run_with(1)

    (plain_lines, plain_time), (ckpt_lines, ckpt_time) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    assert plain_lines == ckpt_lines
    assert ckpt_time > plain_time  # checkpointing is not free
