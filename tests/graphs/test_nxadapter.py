"""Tests for the NetworkX adapters."""

import networkx as nx
import pytest

from repro.graphs.generators import btc_graph, chain_graph
from repro.graphs.nxadapter import from_networkx, results_to_networkx, to_networkx


class TestFromNetworkx:
    def test_digraph_conversion(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b", weight=2.0)
        graph.add_edge("b", "c")
        vertices, id_map = from_networkx(graph)
        assert len(vertices) == 3
        by_vid = {vid: edges for vid, _value, edges in vertices}
        assert by_vid[id_map["a"]] == [(id_map["b"], 2.0)]
        assert by_vid[id_map["b"]] == [(id_map["c"], 1.0)]
        assert by_vid[id_map["c"]] == []

    def test_undirected_produces_both_directions(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        vertices, id_map = from_networkx(graph)
        adjacency = {vid: {d for d, _w in edges} for vid, _v, edges in vertices}
        assert id_map[1] in adjacency[id_map[0]]
        assert id_map[0] in adjacency[id_map[1]]

    def test_node_values_carried(self):
        graph = nx.DiGraph()
        graph.add_node("x", value=3.5)
        vertices, id_map = from_networkx(graph)
        assert vertices[0][1] == 3.5

    def test_dense_renumbering(self):
        graph = nx.DiGraph()
        graph.add_edge(1000, 2000)
        vertices, id_map = from_networkx(graph)
        assert sorted(id_map.values()) == [0, 1]


class TestToNetworkx:
    def test_roundtrip_structure(self):
        original = list(btc_graph(60, seed=2))
        graph = to_networkx(original, directed=False)
        assert graph.number_of_nodes() == 60
        back, id_map = from_networkx(graph)
        back_adjacency = {vid: {d for d, _w in edges} for vid, _v, edges in back}
        # Adjacency is preserved modulo the (dense) renumbering map.
        for vid, _value, edges in original:
            expected = {id_map[d] for d, _w in edges}
            assert back_adjacency[id_map[vid]] == expected

    def test_weights_preserved(self):
        graph = to_networkx([(0, None, [(1, 2.5)]), (1, None, [])])
        assert graph[0][1]["weight"] == 2.5


class TestResultsAttachment:
    def test_attach_results(self):
        graph = to_networkx(list(chain_graph(4)))
        results_to_networkx(graph, {0: 0.0, 1: 1.0, 99: 5.0}, attribute="dist")
        assert graph.nodes[1]["dist"] == 1.0
        assert "dist" not in graph.nodes[3]


class TestEndToEndWithPregelix:
    def test_networkx_graph_through_sssp(self, tmp_path):
        from repro.algorithms import sssp
        from repro.graphs.io import write_graph_to_dfs
        from repro.hdfs import MiniDFS
        from repro.hyracks.engine import HyracksCluster
        from repro.pregelix import PregelixDriver

        nx_graph = nx.path_graph(8, create_using=nx.DiGraph)
        vertices, id_map = from_networkx(nx_graph)
        with HyracksCluster(num_nodes=2, root_dir=str(tmp_path / "c")) as cluster:
            dfs = MiniDFS(datanodes=cluster.node_ids())
            write_graph_to_dfs(dfs, "/in", iter(vertices), num_files=2)
            driver = PregelixDriver(cluster, dfs)
            driver.run(
                sssp.build_job(source_id=id_map[0]), "/in", output_path="/out"
            )
            distances = {
                int(l.split()[0]): float(l.split()[1])
                for l in driver.read_output("/out")
            }
        assert distances[id_map[7]] == pytest.approx(7.0)
