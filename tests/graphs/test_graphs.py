"""Tests for graph generators, IO, sampling, and the dataset registry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.datasets import DATASETS, SCALE_ORDER, graph_statistics, materialize
from repro.graphs.generators import (
    btc_graph,
    chain_graph,
    de_bruijn_path_graph,
    star_graph,
    webmap_graph,
)
from repro.graphs.io import (
    format_graph_line,
    format_vertex_record,
    parse_adjacency_line,
    read_graph_from_dfs,
    typed_parser,
    write_graph_to_dfs,
)
from repro.graphs.sampling import random_walk_sample, scale_up_copy
from repro.hdfs import MiniDFS
from repro.pregelix.types import VertexRecord


class TestGenerators:
    def test_webmap_vertex_count_and_determinism(self):
        a = list(webmap_graph(300, seed=5))
        b = list(webmap_graph(300, seed=5))
        assert len(a) == 300
        assert a == b

    def test_webmap_different_seeds_differ(self):
        assert list(webmap_graph(100, seed=1)) != list(webmap_graph(100, seed=2))

    def test_webmap_power_law_in_degree(self):
        """Low vertex ids should accumulate many more in-edges."""
        indeg = {}
        for _vid, _value, edges in webmap_graph(2000, seed=7):
            for dest, _w in edges:
                indeg[dest] = indeg.get(dest, 0) + 1
        top = sum(indeg.get(v, 0) for v in range(200))
        bottom = sum(indeg.get(v, 0) for v in range(1800, 2000))
        assert top > 5 * max(bottom, 1)

    def test_webmap_no_self_loops(self):
        for vid, _value, edges in webmap_graph(200, seed=3):
            assert all(dest != vid for dest, _w in edges)

    def test_btc_is_undirected(self):
        adjacency = {
            vid: {d for d, _w in edges} for vid, _v, edges in btc_graph(150, seed=2)
        }
        for vid, neighbors in adjacency.items():
            for neighbor in neighbors:
                assert vid in adjacency[neighbor]

    def test_btc_average_degree_close_to_target(self):
        _size, n, e, avg = graph_statistics(btc_graph(2000, avg_degree=8.94, seed=1))
        assert n == 2000
        assert avg == pytest.approx(8.94, rel=0.1)

    def test_chain_and_star(self):
        chain = list(chain_graph(5))
        assert chain[0][2] == [(1, 1.0)]
        assert chain[-1][2] == []
        star = list(star_graph(4))
        assert len(star[0][2]) == 4
        assert all(v[2] == [(0, 1.0)] for v in star[1:])

    def test_de_bruijn_paths(self):
        vertices = list(de_bruijn_path_graph(3, 5, seed=1))
        assert len(vertices) >= 15
        out_degrees = [len(edges) for _vid, _v, edges in vertices]
        assert max(out_degrees) <= 1

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            list(webmap_graph(0))
        with pytest.raises(ValueError):
            list(btc_graph(-1))


class TestIO:
    def test_line_roundtrip(self):
        line = format_graph_line(3, 1.5, [(4, 0.5), (9, 2.0)])
        assert parse_adjacency_line(line) == (3, 1.5, [(4, 0.5), (9, 2.0)])

    def test_null_value(self):
        line = format_graph_line(3, None, [])
        vid, value, edges = parse_adjacency_line(line)
        assert value is None and edges == []

    def test_typed_parser(self):
        parse = typed_parser(int)
        assert parse("5 7 2:1.0") == (5, 7, [(2, 1.0)])

    def test_vertex_record_formatting(self):
        record = VertexRecord(vid=2, value=0.5, edges=[(3, 1.0)])
        assert format_vertex_record(record) == "2 0.5 3:1.0"

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_adjacency_line("42")

    def test_dfs_write_read_roundtrip(self):
        dfs = MiniDFS(datanodes=["a", "b"])
        vertices = list(chain_graph(10))
        count = write_graph_to_dfs(dfs, "/g", iter(vertices), num_files=3)
        assert count == 10
        assert len(dfs.list_files("/g")) == 3
        loaded = sorted(read_graph_from_dfs(dfs, "/g"))
        assert loaded == vertices

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 30),
                st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=1 << 30),
                        st.floats(allow_nan=False, allow_infinity=False),
                    ),
                    max_size=5,
                ),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_line_roundtrip_property(self, rows):
        for vid, value, edges in rows:
            parsed = parse_adjacency_line(format_graph_line(vid, value, edges))
            assert parsed == (vid, value, edges)


class TestSampling:
    def test_sample_size_and_renumbering(self):
        vertices = list(webmap_graph(500, seed=3))
        sample = random_walk_sample(vertices, 100, seed=1)
        assert 0 < len(sample) <= 100
        ids = [vid for vid, _v, _e in sample]
        assert ids == list(range(len(sample)))

    def test_sample_edges_stay_inside(self):
        sample = random_walk_sample(webmap_graph(300, seed=2), 50, seed=4)
        ids = {vid for vid, _v, _e in sample}
        for _vid, _value, edges in sample:
            assert all(dest in ids for dest, _w in edges)

    def test_empty_graph(self):
        assert random_walk_sample([], 10) == []

    def test_scale_up_copies_and_renumbers(self):
        base = list(chain_graph(5))
        scaled = scale_up_copy(base, 3)
        assert len(scaled) == 15
        _s, n, e, avg = graph_statistics(iter(scaled))
        _s0, n0, e0, avg0 = graph_statistics(iter(base))
        assert avg == pytest.approx(avg0)
        ids = {vid for vid, _v, _e in scaled}
        assert len(ids) == 15

    def test_scale_up_keeps_copies_disjoint(self):
        base = list(chain_graph(4))
        scaled = scale_up_copy(base, 2)
        first = {vid for vid, _v, _e in scaled[:4]}
        second = {vid for vid, _v, _e in scaled[4:]}
        for _vid, _value, edges in scaled[:4]:
            assert all(dest in first for dest, _w in edges)
        for _vid, _value, edges in scaled[4:]:
            assert all(dest in second for dest, _w in edges)

    def test_scale_up_rejects_zero_copies(self):
        with pytest.raises(ValueError):
            scale_up_copy(chain_graph(3), 0)


class TestDatasetRegistry:
    def test_all_table_rows_present(self):
        for family in ("webmap", "btc"):
            for name in SCALE_ORDER:
                assert (family, name) in DATASETS

    def test_ladder_is_increasing(self):
        for family in ("webmap", "btc"):
            sizes = [DATASETS[(family, name)].num_vertices for name in SCALE_ORDER]
            assert sizes == sorted(sizes)

    def test_materialize_idempotent(self):
        dfs = MiniDFS(datanodes=["a", "b", "c"])
        spec = DATASETS[("webmap", "tiny")]
        path1 = materialize(spec, dfs)
        files = dfs.list_files(path1)
        path2 = materialize(spec, dfs)
        assert path1 == path2
        assert dfs.list_files(path2) == files

    def test_btc_scaleups_preserve_degree(self):
        dfs = MiniDFS(datanodes=["a"])
        small = DATASETS[("btc", "small")]
        materialize(small, dfs)
        loaded = read_graph_from_dfs(dfs, small.path)
        _s, n, _e, avg = graph_statistics(iter(loaded))
        base = DATASETS[("btc", "x-small")]
        materialize(base, dfs)
        _s2, n2, _e2, avg2 = graph_statistics(iter(read_graph_from_dfs(dfs, base.path)))
        assert avg == pytest.approx(avg2, rel=0.01)
        assert n == 2 * n2

    def test_statistics_shape(self):
        size, n, e, avg = graph_statistics(chain_graph(10))
        assert n == 10 and e == 9
        assert avg == pytest.approx(0.9)
        assert size > 0
