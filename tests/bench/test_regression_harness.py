"""The perf-regression harness itself: report shape, verdicts, CLI exit.

The real CI gate runs the full microbench (``repro bench``); these tests
use a miniature configuration (few vertices, zero latency scale, no
speedup threshold) so they validate the harness mechanics — measurement,
bit-identity checks, verdict logic, report serialization — in seconds.
"""

import json

from repro.bench import regression

TINY = dict(
    vertices=40,
    iterations=2,
    num_nodes=2,
    io_latency_scale=0.0,
    workers=(2,),
    repeats=1,
    graph_seed=3,
)


def run_tiny(min_speedup=0.0, **overrides):
    config = dict(TINY, min_speedup=min_speedup)
    config.update(overrides)
    return regression.run_regression(**config)


def test_report_structure_and_bit_identity():
    report = run_tiny()
    assert report["benchmark"] == "parallel-superstep-microbench"
    assert report["algorithm"] == "pagerank"
    assert report["config"]["vertices"] == 40
    sequential = report["sequential"]
    assert sequential["parallelism"] == 1
    assert sequential["seconds"] > 0
    assert sequential["supersteps"] > 0
    assert sequential["throughput_vertex_supersteps_per_sec"] > 0
    (parallel,) = report["parallel"]
    assert parallel["parallelism"] == 2
    assert parallel["bit_identical_to_sequential"] is True
    assert parallel["speedup"] > 0
    # min_speedup=0: the verdict reduces to the determinism check.
    assert report["pass"] is True


def test_unreachable_speedup_threshold_fails_the_verdict():
    # Without latency realism a single-core box cannot speed anything
    # up 1000x, so the perf gate must report failure.
    report = run_tiny(min_speedup=1000.0)
    assert report["pass"] is False
    assert all(r["bit_identical_to_sequential"] for r in report["parallel"])


def test_worker_counts_are_deduplicated_and_sorted():
    report = run_tiny(workers=(4, 2, 2, 1))
    assert [r["parallelism"] for r in report["parallel"]] == [2, 4]


def test_write_report_round_trips(tmp_path):
    report = run_tiny()
    path = str(tmp_path / "BENCH_parallel.json")
    assert regression.write_report(report, path) == path
    with open(path) as handle:
        assert json.load(handle) == report


def test_summary_lines_render_verdict():
    report = run_tiny()
    lines = regression.summary_lines(report)
    assert any("sequential:" in line for line in lines)
    assert any("parallel-2:" in line for line in lines)
    assert lines[-1].startswith("  verdict: PASS")


def test_cli_bench_exit_status_tracks_verdict(tmp_path, capsys):
    from repro.cli import main

    out = str(tmp_path / "bench.json")
    argv = [
        "bench",
        "--out", out,
        "--vertices", "40",
        "--iterations", "2",
        "--nodes", "2",
        "--parallel", "2",
        "--io-latency", "0",
        "--repeats", "1",
        "--min-speedup", "0",
    ]
    assert main(argv) == 0
    with open(out) as handle:
        report = json.load(handle)
    assert report["pass"] is True
    assert "verdict: PASS" in capsys.readouterr().out
