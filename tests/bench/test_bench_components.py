"""Unit tests for the benchmark harness building blocks."""

import math

import pytest

from repro.bench.harness import ExperimentEnv, Measurement
from repro.bench.reporting import format_series, print_series, print_table
from repro.common import costmodel


class TestReporting:
    def collect(self):
        lines = []
        return lines, lines.append

    def test_print_table_alignment(self):
        lines, out = self.collect()
        print_table("T", ["a", "bbb"], [(1, 2.5), ("xx", None)], out=out)
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert any("2.500" in line for line in lines)
        assert any("-" in line for line in lines)  # None rendered as dash

    def test_format_series_with_fail(self):
        text = format_series("sys", [(0.1, 2.0), (0.2, "FAIL")])
        assert text.startswith("sys:")
        assert "FAIL" in text
        assert "(0.100, 2.000)" in text

    def test_print_series(self):
        lines, out = self.collect()
        print_series("F", {"a": [(1, 2)], "b": [(3, "FAIL")]}, out=out)
        assert lines[0] == "F"
        assert len(lines) == 4  # title + 2 series + blank

    def test_scientific_rendering(self):
        text = format_series("s", [(1, 123456.789), (2, 0.0001)])
        assert "e+" in text or "e-" in text


class TestMeasurement:
    def test_ok_point(self):
        m = Measurement(
            system="s", dataset="d", ratio=0.125, status="ok",
            sim_total_seconds=10.5, sim_avg_iteration_seconds=2.1,
        )
        assert m.ok
        assert m.point() == (0.125, 10.5)
        assert m.point("sim_avg_iteration_seconds") == (0.125, 2.1)

    def test_fail_point(self):
        m = Measurement(system="s", dataset="d", ratio=0.5, status="fail")
        assert not m.ok
        assert m.point() == (0.5, "FAIL")
        assert math.isnan(m.total_seconds)


class TestCostModel:
    def test_pressure_penalty_monotone(self):
        values = [costmodel.pressure_penalty(p, 1.0) for p in (0.0, 0.3, 0.6, 0.8, 0.95)]
        assert values[0] == 1.0
        assert values == sorted(values)
        assert values[-1] > 10  # the GC wall

    def test_pressure_penalty_zero_budget(self):
        assert costmodel.pressure_penalty(100, 0) == 1.0

    def test_disk_and_network_seconds(self):
        assert costmodel.disk_seconds(costmodel.DISK_BANDWIDTH) == pytest.approx(1.0)
        assert costmodel.disk_seconds(costmodel.DISK_BANDWIDTH, workers=2) == pytest.approx(0.5)
        assert costmodel.paged_disk_seconds(costmodel.PAGED_IO_BANDWIDTH) == pytest.approx(1.0)
        assert costmodel.network_seconds(0) == 0.0

    def test_paged_io_is_slower_than_sequential(self):
        assert costmodel.PAGED_IO_BANDWIDTH < costmodel.DISK_BANDWIDTH


class TestExperimentEnv:
    @pytest.fixture(scope="class")
    def env(self):
        return ExperimentEnv(num_nodes=2)

    def test_ratio_matches_paper_large(self, env):
        # By construction: Large's ratio equals the paper's exactly.
        spec, _path, _n = env.dataset("webmap", "large")
        paper_ratio = spec.paper_size_gb / (32 * 8.0)
        assert env.ratio("webmap", "large") == pytest.approx(paper_ratio, rel=1e-6)

    def test_node_memory_scales_with_machines(self, env):
        assert env.node_memory("webmap", paper_machines=16) == pytest.approx(
            env.node_memory("webmap", paper_machines=32) / 2, rel=0.01
        )

    def test_ratio_halves_with_double_machines(self, env):
        r32 = env.ratio("btc", "tiny", paper_machines=32)
        r16 = env.ratio("btc", "tiny", paper_machines=16)
        assert r16 == pytest.approx(2 * r32, rel=1e-6)

    def test_dataset_idempotent(self, env):
        spec1, path1, bytes1 = env.dataset("btc", "tiny")
        spec2, path2, bytes2 = env.dataset("btc", "tiny")
        assert path1 == path2 and bytes1 == bytes2


class TestLocReport:
    def test_loc_report(self):
        from repro.bench.loc import count_lines, loc_report

        report = loc_report()
        assert report["pregelix_core"] > 500
        assert report["leveraged_infrastructure"] > report["pregelix_core"]
        assert report["paper_ratio"] == pytest.approx(32197 / 8514)

    def test_count_lines_skips_comments_and_docstrings(self, tmp_path):
        from repro.bench.loc import count_lines

        (tmp_path / "m.py").write_text(
            '"""docstring\nspanning lines\n"""\n# comment\nx = 1\n\ny = 2\n'
        )
        assert count_lines(str(tmp_path)) == 2
