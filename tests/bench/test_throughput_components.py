"""Unit tests for the throughput experiment machinery."""

import pytest

from repro.algorithms import pagerank
from repro.bench.throughput import SteppedPregelixJob, _disk_bytes
from repro.graphs.generators import webmap_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster


@pytest.fixture
def setup(tmp_path):
    cluster = HyracksCluster(num_nodes=2, root_dir=str(tmp_path / "tc"))
    dfs = MiniDFS(datanodes=cluster.node_ids())
    write_graph_to_dfs(dfs, "/in/g", webmap_graph(150, seed=3), num_files=2)
    yield cluster, dfs
    cluster.close()


class TestSteppedJob:
    def test_step_until_done(self, setup):
        cluster, dfs = setup
        job = pagerank.build_job(iterations=4)
        stepped = SteppedPregelixJob(cluster, dfs, job, "/in/g", run_id="t1")
        steps = 0
        while stepped.step(paper_machines=8):
            steps += 1
        assert steps == 4
        assert stepped.done
        assert not stepped.step(paper_machines=8)  # idempotent when done

    def test_costs_recorded_per_superstep(self, setup):
        cluster, dfs = setup
        job = pagerank.build_job(iterations=3)
        stepped = SteppedPregelixJob(cluster, dfs, job, "/in/g", run_id="t2")
        while stepped.step(paper_machines=8):
            pass
        assert len(stepped.costs) == 3
        cpu, disk, net, supersteps = stepped.totals(scale=10.0)
        assert supersteps == 3
        assert cpu > 0

    def test_interleaved_jobs_share_cluster(self, setup):
        cluster, dfs = setup
        jobs = [
            SteppedPregelixJob(
                cluster, dfs, pagerank.build_job(iterations=3), "/in/g",
                run_id="t3-%d" % i,
            )
            for i in range(2)
        ]
        progressed = True
        while progressed:
            progressed = any(stepped.step(8) for stepped in jobs)
        assert all(stepped.done for stepped in jobs)
        # Both runs' state lives side by side on the shared nodes.
        assert all(stepped.gs.num_vertices == 150 for stepped in jobs)

    def test_disk_bytes_counter(self, setup):
        cluster, dfs = setup
        before = _disk_bytes(cluster)
        job = pagerank.build_job(iterations=2)
        stepped = SteppedPregelixJob(cluster, dfs, job, "/in/g", run_id="t4")
        while stepped.step(8):
            pass
        assert _disk_bytes(cluster) >= before
