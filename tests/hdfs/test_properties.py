"""Property-based tests for MiniDFS."""

from hypothesis import given, settings, strategies as st

from repro.hdfs import MiniDFS


class TestRoundtripProperties:
    @given(
        data=st.binary(max_size=500),
        block_size=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_write_read_identity(self, data, block_size):
        dfs = MiniDFS(datanodes=["a", "b"], block_size=block_size)
        dfs.write("/f", data)
        assert dfs.read("/f") == data

    @given(
        data=st.binary(min_size=1, max_size=500),
        block_size=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_blocks_cover_file_exactly(self, data, block_size):
        dfs = MiniDFS(datanodes=["a", "b", "c"], block_size=block_size)
        dfs.write("/f", data)
        locations = dfs.block_locations("/f")
        assert sum(loc.length for loc in locations) == len(data)
        offset = 0
        for loc in locations:
            assert loc.offset == offset
            assert 0 < loc.length <= block_size
            offset += loc.length
        rebuilt = b"".join(
            dfs.read_block("/f", i) for i in range(len(locations))
        )
        assert rebuilt == data

    @given(lines=st.lists(st.text(alphabet="abc 0123", max_size=20), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_text_lines_roundtrip(self, lines):
        # splitlines() folds trailing empties; write only non-empty lines.
        lines = [line for line in lines if line]
        dfs = MiniDFS(datanodes=["a"])
        dfs.write_text_lines("/t", lines)
        assert dfs.read_text_lines("/t") == lines
