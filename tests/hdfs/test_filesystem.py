"""Tests for the MiniDFS simulated distributed file system."""

import pytest

from repro.common.errors import ChecksumError
from repro.hdfs import MiniDFS


@pytest.fixture
def dfs():
    return MiniDFS(datanodes=["n0", "n1", "n2"], block_size=16, replication=2)


class TestNamespace:
    def test_write_read_roundtrip(self, dfs):
        dfs.write("/data/file.txt", b"hello world")
        assert dfs.read("/data/file.txt") == b"hello world"

    def test_path_normalization(self, dfs):
        dfs.write("data/a", b"x")
        assert dfs.exists("/data/a")
        assert dfs.read("//data/a/") == b"x"

    def test_missing_file_raises(self, dfs):
        with pytest.raises(FileNotFoundError):
            dfs.read("/nope")

    def test_list_files_by_prefix(self, dfs):
        dfs.write("/a/1", b"")
        dfs.write("/a/2", b"")
        dfs.write("/b/1", b"")
        assert dfs.list_files("/a") == ["/a/1", "/a/2"]
        assert len(dfs.list_files()) == 3

    def test_delete(self, dfs):
        dfs.write("/x", b"1")
        assert dfs.delete("/x")
        assert not dfs.exists("/x")
        assert not dfs.delete("/x")

    def test_recursive_delete(self, dfs):
        dfs.write("/ckpt/1/vertex", b"v")
        dfs.write("/ckpt/1/msg", b"m")
        dfs.write("/ckpt/2/vertex", b"v")
        assert dfs.delete("/ckpt/1", recursive=True)
        assert dfs.list_files("/ckpt") == ["/ckpt/2/vertex"]

    def test_rename(self, dfs):
        dfs.write("/old", b"data")
        dfs.rename("/old", "/new")
        assert dfs.read("/new") == b"data"
        assert not dfs.exists("/old")

    def test_rename_onto_existing_raises(self, dfs):
        dfs.write("/a", b"1")
        dfs.write("/b", b"2")
        with pytest.raises(FileExistsError):
            dfs.rename("/a", "/b")
        # Neither side is disturbed by the refused rename.
        assert dfs.read("/a") == b"1" and dfs.read("/b") == b"2"

    def test_rename_overwrite_replaces_destination(self, dfs):
        dfs.write("/stage/MANIFEST", b"new manifest")
        dfs.write("/final/MANIFEST", b"old manifest")
        dfs.rename("/stage/MANIFEST", "/final/MANIFEST", overwrite=True)
        assert dfs.read("/final/MANIFEST") == b"new manifest"
        assert not dfs.exists("/stage/MANIFEST")

    def test_rename_missing_source_raises(self, dfs):
        with pytest.raises(FileNotFoundError):
            dfs.rename("/ghost", "/anywhere", overwrite=True)

    def test_recursive_delete_nested_checkpoint_tree(self, dfs):
        # A checkpoint superstep dir nests blobs, a manifest, and staging
        # debris; GC must take the whole generation in one call without
        # touching its siblings.
        for name in ("vertex-p00000", "msg-p00000", "MANIFEST", "_tmp.gs"):
            dfs.write("/pregelix/run/ckpt/000002/%s" % name, b"x")
        dfs.write("/pregelix/run/ckpt/000004/MANIFEST", b"y")
        dfs.write("/pregelix/run/gs", b"g")
        assert dfs.delete("/pregelix/run/ckpt/000002", recursive=True)
        assert dfs.list_files("/pregelix/run") == [
            "/pregelix/run/ckpt/000004/MANIFEST",
            "/pregelix/run/gs",
        ]
        # Deleting an already-empty subtree reports nothing to do.
        assert not dfs.delete("/pregelix/run/ckpt/000002", recursive=True)


class TestBlocks:
    def test_file_split_into_blocks(self, dfs):
        dfs.write("/big", bytes(40))
        locations = dfs.block_locations("/big")
        assert [loc.length for loc in locations] == [16, 16, 8]
        assert [loc.offset for loc in locations] == [0, 16, 32]

    def test_replication_factor(self, dfs):
        dfs.write("/f", bytes(16))
        (location,) = dfs.block_locations("/f")
        assert len(location.hosts) == 2
        assert set(location.hosts) <= {"n0", "n1", "n2"}

    def test_blocks_spread_across_datanodes(self, dfs):
        dfs.write("/wide", bytes(16 * 6))
        primaries = [loc.hosts[0] for loc in dfs.block_locations("/wide")]
        assert set(primaries) == {"n0", "n1", "n2"}

    def test_read_block(self, dfs):
        dfs.write("/f", b"A" * 16 + b"B" * 16)
        assert dfs.read_block("/f", 0) == b"A" * 16
        assert dfs.read_block("/f", 1) == b"B" * 16

    def test_status(self, dfs):
        dfs.write("/f", bytes(20))
        status = dfs.status("/f")
        assert status.length == 20
        assert status.block_size == 16
        assert status.replication == 2

    def test_replication_capped_at_datanode_count(self):
        dfs = MiniDFS(datanodes=["only"], replication=3)
        dfs.write("/f", b"x")
        (location,) = dfs.block_locations("/f")
        assert location.hosts == ("only",)


class TestTextHelpers:
    def test_text_lines_roundtrip(self, dfs):
        lines = ["1 0.5 2 3", "2 0.5 3", "3 0.5"]
        dfs.write_text_lines("/graph/part0", lines)
        assert dfs.read_text_lines("/graph/part0") == lines

    def test_empty_lines(self, dfs):
        dfs.write_text_lines("/empty", [])
        assert dfs.read_text_lines("/empty") == []

    def test_append(self, dfs):
        dfs.append("/log", "a")
        dfs.append("/log", "b")
        assert dfs.read("/log") == b"ab"

    def test_total_bytes(self, dfs):
        dfs.write("/d/1", bytes(10))
        dfs.write("/d/2", bytes(5))
        dfs.write("/other", bytes(100))
        assert dfs.total_bytes("/d") == 15


class TestIntegrity:
    def test_checksum_stable_across_rewrites_of_same_bytes(self, dfs):
        dfs.write("/f", b"payload")
        first = dfs.checksum("/f")
        dfs.write("/f", b"payload")
        assert dfs.checksum("/f") == first
        dfs.write("/f", b"payloae")
        assert dfs.checksum("/f") != first

    def test_corrupt_block_fails_read_with_block_index(self, dfs):
        dfs.write("/f", b"A" * 16 + b"B" * 16 + b"C" * 4)
        dfs.corrupt("/f", block=1)
        assert dfs.verify("/f") == [1]
        with pytest.raises(ChecksumError) as exc:
            dfs.read("/f")
        assert exc.value.blocks == (1,)
        # The undamaged blocks are still individually readable.
        assert dfs.read_block("/f", 0) == b"A" * 16
        with pytest.raises(ChecksumError):
            dfs.read_block("/f", 1)

    def test_corruption_keeps_length_but_stales_crc(self, dfs):
        dfs.write("/f", b"x" * 20)
        dfs.corrupt("/f")
        assert dfs.status("/f").length == 20  # silent rot: size unchanged
        assert dfs.verify("/f")

    def test_torn_write_passes_block_crcs_but_shrinks(self, dfs):
        dfs.write("/f", b"z" * 40)
        intended = dfs.checksum("/f")
        dfs.tear("/f")
        # The surviving prefix is self-consistent: per-block CRCs pass
        # and the file reads back cleanly, just shorter.
        assert dfs.verify("/f") == []
        assert dfs.read("/f") == b"z" * 20
        assert dfs.status("/f").length == 20
        # But the write-time metadata still records the intended bytes,
        # so an audit comparing it to the stored content catches the tear.
        assert dfs.checksum("/f") == intended
        assert dfs.content_checksum("/f") != intended

    def test_content_checksum_matches_metadata_when_healthy(self, dfs):
        dfs.write("/f", b"intact bytes" * 5)
        assert dfs.content_checksum("/f") == dfs.checksum("/f")

    def test_verify_tree_reports_only_damaged_files(self, dfs):
        dfs.write("/t/ok", b"fine")
        dfs.write("/t/bad", b"doomed")
        dfs.corrupt("/t/bad")
        assert dfs.verify_tree("/t") == {"/t/bad": [0]}

    def test_append_to_corrupted_file_surfaces_damage(self, dfs):
        dfs.write("/log", b"entry-1")
        dfs.corrupt("/log")
        # Append re-reads the existing content, which verifies checksums;
        # the damage must surface instead of being re-checksummed over.
        with pytest.raises(ChecksumError):
            dfs.append("/log", b"entry-2")

    def test_append_rechecksums_healthy_file(self, dfs):
        dfs.write("/log", b"a" * 16)
        before = dfs.checksum("/log")
        dfs.append("/log", b"b" * 16)
        assert dfs.checksum("/log") != before
        assert dfs.verify("/log") == []
        assert dfs.read("/log") == b"a" * 16 + b"b" * 16
