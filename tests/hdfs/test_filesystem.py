"""Tests for the MiniDFS simulated distributed file system."""

import pytest

from repro.hdfs import MiniDFS


@pytest.fixture
def dfs():
    return MiniDFS(datanodes=["n0", "n1", "n2"], block_size=16, replication=2)


class TestNamespace:
    def test_write_read_roundtrip(self, dfs):
        dfs.write("/data/file.txt", b"hello world")
        assert dfs.read("/data/file.txt") == b"hello world"

    def test_path_normalization(self, dfs):
        dfs.write("data/a", b"x")
        assert dfs.exists("/data/a")
        assert dfs.read("//data/a/") == b"x"

    def test_missing_file_raises(self, dfs):
        with pytest.raises(FileNotFoundError):
            dfs.read("/nope")

    def test_list_files_by_prefix(self, dfs):
        dfs.write("/a/1", b"")
        dfs.write("/a/2", b"")
        dfs.write("/b/1", b"")
        assert dfs.list_files("/a") == ["/a/1", "/a/2"]
        assert len(dfs.list_files()) == 3

    def test_delete(self, dfs):
        dfs.write("/x", b"1")
        assert dfs.delete("/x")
        assert not dfs.exists("/x")
        assert not dfs.delete("/x")

    def test_recursive_delete(self, dfs):
        dfs.write("/ckpt/1/vertex", b"v")
        dfs.write("/ckpt/1/msg", b"m")
        dfs.write("/ckpt/2/vertex", b"v")
        assert dfs.delete("/ckpt/1", recursive=True)
        assert dfs.list_files("/ckpt") == ["/ckpt/2/vertex"]

    def test_rename(self, dfs):
        dfs.write("/old", b"data")
        dfs.rename("/old", "/new")
        assert dfs.read("/new") == b"data"
        assert not dfs.exists("/old")

    def test_rename_onto_existing_raises(self, dfs):
        dfs.write("/a", b"1")
        dfs.write("/b", b"2")
        with pytest.raises(FileExistsError):
            dfs.rename("/a", "/b")


class TestBlocks:
    def test_file_split_into_blocks(self, dfs):
        dfs.write("/big", bytes(40))
        locations = dfs.block_locations("/big")
        assert [loc.length for loc in locations] == [16, 16, 8]
        assert [loc.offset for loc in locations] == [0, 16, 32]

    def test_replication_factor(self, dfs):
        dfs.write("/f", bytes(16))
        (location,) = dfs.block_locations("/f")
        assert len(location.hosts) == 2
        assert set(location.hosts) <= {"n0", "n1", "n2"}

    def test_blocks_spread_across_datanodes(self, dfs):
        dfs.write("/wide", bytes(16 * 6))
        primaries = [loc.hosts[0] for loc in dfs.block_locations("/wide")]
        assert set(primaries) == {"n0", "n1", "n2"}

    def test_read_block(self, dfs):
        dfs.write("/f", b"A" * 16 + b"B" * 16)
        assert dfs.read_block("/f", 0) == b"A" * 16
        assert dfs.read_block("/f", 1) == b"B" * 16

    def test_status(self, dfs):
        dfs.write("/f", bytes(20))
        status = dfs.status("/f")
        assert status.length == 20
        assert status.block_size == 16
        assert status.replication == 2

    def test_replication_capped_at_datanode_count(self):
        dfs = MiniDFS(datanodes=["only"], replication=3)
        dfs.write("/f", b"x")
        (location,) = dfs.block_locations("/f")
        assert location.hosts == ("only",)


class TestTextHelpers:
    def test_text_lines_roundtrip(self, dfs):
        lines = ["1 0.5 2 3", "2 0.5 3", "3 0.5"]
        dfs.write_text_lines("/graph/part0", lines)
        assert dfs.read_text_lines("/graph/part0") == lines

    def test_empty_lines(self, dfs):
        dfs.write_text_lines("/empty", [])
        assert dfs.read_text_lines("/empty") == []

    def test_append(self, dfs):
        dfs.append("/log", "a")
        dfs.append("/log", "b")
        assert dfs.read("/log") == b"ab"

    def test_total_bytes(self, dfs):
        dfs.write("/d/1", bytes(10))
        dfs.write("/d/2", bytes(5))
        dfs.write("/other", bytes(100))
        assert dfs.total_bytes("/d") == 15
