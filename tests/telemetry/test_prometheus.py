"""The Prometheus text exporter: names, escaping, histogram families."""

import math
import re
import threading

from repro.telemetry import MetricsRegistry
from repro.telemetry.prometheus import (
    CONTENT_TYPE,
    escape_label_value,
    format_value,
    render_prometheus,
    sanitize_label_name,
    sanitize_metric_name,
)

_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$"
)


def parse_exposition(text):
    """``{series-with-labels: float value}`` for every sample line."""
    samples = {}
    assert text.endswith("\n")
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _SAMPLE_LINE.match(line), "malformed sample line: %r" % line
        series, value = line.rsplit(" ", 1)
        samples[series] = float(value)
    return samples


class TestSanitization:
    def test_metric_names(self):
        assert sanitize_metric_name("serve.queue_depth") == "serve_queue_depth"
        assert sanitize_metric_name("a-b c") == "a_b_c"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("") == "_"

    def test_label_names(self):
        assert sanitize_label_name("tenant") == "tenant"
        assert sanitize_label_name("node.id") == "node_id"
        assert sanitize_label_name("1x") == "_1x"

    def test_label_value_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(True) == "1"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"
        assert float(format_value(0.1)) == 0.1  # repr round-trips


class TestRender:
    def test_counter_gets_total_suffix_and_type_line(self):
        registry = MetricsRegistry()
        registry.counter("serve.submitted", tenant="alice").inc(3)
        registry.counter("serve.submitted", tenant="bob").inc(1)
        text = render_prometheus(registry)
        assert "# TYPE serve_submitted_total counter" in text
        assert text.count("# TYPE serve_submitted_total") == 1  # one family
        samples = parse_exposition(text)
        assert samples['serve_submitted_total{tenant="alice"}'] == 3
        assert samples['serve_submitted_total{tenant="bob"}'] == 1

    def test_gauge_renders_plain(self):
        registry = MetricsRegistry()
        registry.gauge("serve.queue_depth").set(7)
        samples = parse_exposition(render_prometheus(registry))
        assert samples["serve_queue_depth"] == 7

    def test_histogram_family_is_internally_consistent(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rpc.seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            hist.observe(value)
        text = render_prometheus(registry)
        assert "# TYPE rpc_seconds histogram" in text
        samples = parse_exposition(text)
        assert samples['rpc_seconds_bucket{le="0.1"}'] == 1
        assert samples['rpc_seconds_bucket{le="1.0"}'] == 3
        # +Inf bucket equals _count, and buckets are monotone cumulative.
        assert samples['rpc_seconds_bucket{le="+Inf"}'] == 4
        assert samples["rpc_seconds_count"] == 4
        assert samples["rpc_seconds_sum"] == sum((0.05, 0.5, 0.7, 5.0))
        buckets = [
            value for series, value in samples.items()
            if series.startswith("rpc_seconds_bucket")
        ]
        assert buckets == sorted(buckets)

    def test_sum_matches_registry_exactly(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        values = [0.1 * i + 1e-9 for i in range(40)]
        for value in values:
            hist.observe(value)
        samples = parse_exposition(render_prometheus(registry))
        # The scrape reports the histogram's exact arrival-order sum.
        assert samples["h_sum"] == hist.total == sum(values)

    def test_empty_registry_renders_empty_body(self):
        assert render_prometheus(MetricsRegistry()) == "\n"

    def test_nan_gauge_renders_parseable(self):
        registry = MetricsRegistry()
        registry.gauge("weird").set(float("nan"))
        line = [
            l for l in render_prometheus(registry).splitlines()
            if l.startswith("weird")
        ][0]
        assert math.isnan(float(line.split(" ")[1]))

    def test_content_type_advertises_004(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestScrapeUnderConcurrency:
    def test_render_during_writes_is_consistent(self):
        # A scrape racing live observers must still see every histogram
        # family internally consistent (+Inf == _count) because the
        # bucket snapshot is taken under the histogram's lock.
        registry = MetricsRegistry()
        stop = threading.Event()

        def writer(tenant):
            value = 0.001
            while not stop.is_set():
                registry.counter("serve.submitted", tenant=tenant).inc()
                registry.histogram(
                    "serve.latency.e2e_seconds", tenant=tenant
                ).observe(value)
                value = value * 1.1 if value < 100 else 0.001

        threads = [
            threading.Thread(target=writer, args=("t%d" % i,))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        try:
            checked = 0
            for _ in range(25):
                samples = parse_exposition(render_prometheus(registry))
                for series, value in samples.items():
                    match = re.match(
                        r'(\w+)_bucket\{(.*?),?le="\+Inf"\}', series
                    )
                    if match is None:
                        continue
                    name, labels = match.groups()
                    count_series = "%s_count%s" % (
                        name, "{%s}" % labels if labels else "",
                    )
                    assert samples[count_series] == value, series
                    checked += 1
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert checked  # the writers registered their histograms
