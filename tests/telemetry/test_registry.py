"""Unit tests for the metrics registry: labels, scoping, thread safety."""

import threading

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.registry import format_metric_key


class TestMetricIdentity:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.counter("cache.misses")
        b = registry.counter("cache.misses")
        assert a is b
        a.inc(3)
        assert registry.value("cache.misses") == 3

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        registry.counter("cache.misses", node="node0").inc(2)
        registry.counter("cache.misses", node="node1").inc(5)
        assert registry.value("cache.misses", node="node0") == 2
        assert registry.value("cache.misses", node="node1") == 5
        assert registry.value("cache.misses") == 0  # unlabeled is distinct

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("m", node="n0", op="scan")
        b = registry.counter("m", op="scan", node="n0")
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_value_default_for_missing(self):
        registry = MetricsRegistry()
        assert registry.value("nope") == 0
        assert registry.value("nope", default=None) is None
        assert registry.get("nope") is None


class TestMetricKinds:
    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live_machines")
        gauge.set(4)
        gauge.dec()
        gauge.inc(2)
        assert gauge.value == 5

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("superstep_seconds")
        for value in (0.5, 1.5, 1.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(3.0)
        assert hist.min == 0.5
        assert hist.max == 1.5
        assert hist.mean == pytest.approx(1.0)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(3.0)

    def test_histogram_total_matches_sum_exactly(self):
        # Arrival-order accumulation must reproduce sum(list) bit-for-bit;
        # the statistics collector's summary() depends on this.
        values = [0.1 * i + 1e-9 for i in range(50)]
        registry = MetricsRegistry()
        hist = registry.histogram("elapsed")
        for value in values:
            hist.observe(value)
        assert hist.total == sum(values)

    def test_empty_histogram_mean(self):
        assert MetricsRegistry().histogram("h").mean == 0.0


class TestScoping:
    def test_scoped_prefixes_names(self):
        registry = MetricsRegistry()
        scoped = registry.scoped("pregelix")
        scoped.counter("messages_sent").inc(9)
        assert registry.value("pregelix.messages_sent") == 9
        assert scoped.value("messages_sent") == 9

    def test_nested_scopes_collapse(self):
        registry = MetricsRegistry()
        inner = registry.scoped("storage").scoped("lsm")
        inner.counter("flushes").inc()
        assert registry.value("storage.lsm.flushes") == 1
        assert inner.registry is registry  # views collapse to one level


class TestSnapshot:
    def test_snapshot_keys_and_values(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(1)
        registry.counter("b", node="n0").inc(2)
        registry.histogram("h").observe(4.0)
        snap = registry.snapshot()
        assert snap["a"] == 1
        assert snap["b{node=n0}"] == 2
        assert snap["h"] == 4.0  # histograms summarize to their total
        assert len(registry) == 3

    def test_format_metric_key(self):
        assert format_metric_key("a", ()) == "a"
        assert format_metric_key("a", (("node", "n0"), ("op", "x"))) == "a{node=n0,op=x}"


class TestThreadSafety:
    def test_concurrent_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def bump():
            for _ in range(5000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 20000

    def test_concurrent_get_or_create(self):
        registry = MetricsRegistry()
        seen = []

        def create():
            seen.append(registry.counter("shared"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(metric is seen[0] for metric in seen)
        assert len(registry) == 1
