"""Unit tests for the metrics registry: labels, scoping, thread safety."""

import threading

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.registry import format_metric_key


class TestMetricIdentity:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.counter("cache.misses")
        b = registry.counter("cache.misses")
        assert a is b
        a.inc(3)
        assert registry.value("cache.misses") == 3

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        registry.counter("cache.misses", node="node0").inc(2)
        registry.counter("cache.misses", node="node1").inc(5)
        assert registry.value("cache.misses", node="node0") == 2
        assert registry.value("cache.misses", node="node1") == 5
        assert registry.value("cache.misses") == 0  # unlabeled is distinct

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("m", node="n0", op="scan")
        b = registry.counter("m", op="scan", node="n0")
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_value_default_for_missing(self):
        registry = MetricsRegistry()
        assert registry.value("nope") == 0
        assert registry.value("nope", default=None) is None
        assert registry.get("nope") is None


class TestMetricKinds:
    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live_machines")
        gauge.set(4)
        gauge.dec()
        gauge.inc(2)
        assert gauge.value == 5

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("superstep_seconds")
        for value in (0.5, 1.5, 1.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(3.0)
        assert hist.min == 0.5
        assert hist.max == 1.5
        assert hist.mean == pytest.approx(1.0)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(3.0)

    def test_histogram_total_matches_sum_exactly(self):
        # Arrival-order accumulation must reproduce sum(list) bit-for-bit;
        # the statistics collector's summary() depends on this.
        values = [0.1 * i + 1e-9 for i in range(50)]
        registry = MetricsRegistry()
        hist = registry.histogram("elapsed")
        for value in values:
            hist.observe(value)
        assert hist.total == sum(values)

    def test_empty_histogram_mean(self):
        assert MetricsRegistry().histogram("h").mean == 0.0


class TestHistogramBuckets:
    def test_bucket_counts_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 99.0):
            hist.observe(value)
        bounds, cumulative, count, total = hist.bucket_snapshot()
        assert bounds == (1.0, 2.0, 4.0)
        # le-inclusive: 1.0 falls in the le=1.0 bucket; 99.0 only in the
        # implicit +Inf bucket, which is `count` by construction.
        assert cumulative == [2, 3, 4]
        assert count == 5
        assert total == sum((0.5, 1.0, 1.5, 3.0, 99.0))

    def test_default_buckets_cover_latency_range(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.bucket_bounds[0] == 0.001
        assert hist.bucket_bounds[-1] == 300.0
        assert list(hist.bucket_bounds) == sorted(hist.bucket_bounds)

    def test_bad_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("a", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("b", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("c", buckets=(2.0, 1.0))

    def test_percentiles_interpolate(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(10.0, 20.0, 30.0))
        for value in range(1, 21):  # 1..20 uniform
            hist.observe(float(value))
        assert hist.percentile(0.5) == pytest.approx(10.0, abs=2.0)
        assert hist.percentile(0.95) == pytest.approx(19.0, abs=2.0)
        # Estimates are clamped into the observed [min, max] envelope.
        assert hist.percentile(0.0) >= hist.min
        assert hist.percentile(1.0) <= hist.max

    def test_percentile_empty_and_overflow(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        assert hist.percentile(0.5) is None
        hist.observe(50.0)  # beyond the last bound: +Inf bucket
        assert hist.percentile(0.99) == 50.0  # reported as the max

    def test_summary_includes_percentiles(self):
        hist = MetricsRegistry().histogram("h")
        for value in (0.002, 0.004, 0.3):
            hist.observe(value)
        summary = hist.summary()
        for quantile in ("p50", "p95", "p99"):
            assert summary[quantile] is not None
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert summary["sum"] == sum((0.002, 0.004, 0.3))  # exact, always

    def test_custom_buckets_only_shape_distribution(self):
        # Two histograms fed the same stream agree on the exact stats
        # regardless of bucketing; only the percentile estimates differ.
        registry = MetricsRegistry()
        coarse = registry.histogram("coarse", buckets=(1.0, 100.0))
        fine = registry.histogram("fine")
        for value in (0.01, 0.02, 0.5, 2.0):
            coarse.observe(value)
            fine.observe(value)
        assert coarse.total == fine.total
        assert coarse.count == fine.count
        assert (coarse.min, coarse.max) == (fine.min, fine.max)


class TestScoping:
    def test_scoped_prefixes_names(self):
        registry = MetricsRegistry()
        scoped = registry.scoped("pregelix")
        scoped.counter("messages_sent").inc(9)
        assert registry.value("pregelix.messages_sent") == 9
        assert scoped.value("messages_sent") == 9

    def test_nested_scopes_collapse(self):
        registry = MetricsRegistry()
        inner = registry.scoped("storage").scoped("lsm")
        inner.counter("flushes").inc()
        assert registry.value("storage.lsm.flushes") == 1
        assert inner.registry is registry  # views collapse to one level


class TestSnapshot:
    def test_snapshot_keys_and_values(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(1)
        registry.counter("b", node="n0").inc(2)
        registry.histogram("h").observe(4.0)
        snap = registry.snapshot()
        assert snap["a"] == 1
        assert snap["b{node=n0}"] == 2
        # Histograms snapshot to their full summary, not just the total.
        assert snap["h"]["sum"] == 4.0
        assert snap["h"]["count"] == 1
        assert snap["h"]["p50"] == pytest.approx(4.0, rel=0.5)
        assert len(registry) == 3

    def test_format_metric_key(self):
        assert format_metric_key("a", ()) == "a"
        assert format_metric_key("a", (("node", "n0"), ("op", "x"))) == "a{node=n0,op=x}"


class TestThreadSafety:
    def test_concurrent_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def bump():
            for _ in range(5000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 20000

    def test_concurrent_get_or_create(self):
        registry = MetricsRegistry()
        seen = []

        def create():
            seen.append(registry.counter("shared"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(metric is seen[0] for metric in seen)
        assert len(registry) == 1

    def test_concurrent_get_or_create_mixed_kinds_and_labels(self):
        # The service's hot path races counter/histogram creation across
        # worker threads with distinct label sets; every (name, labels)
        # pair must resolve to exactly one live metric and no observation
        # may be lost to a clobbered registration.
        registry = MetricsRegistry()
        barrier = threading.Barrier(8)
        errors = []

        def worker(index):
            tenant = "t%d" % (index % 4)
            try:
                barrier.wait(timeout=10)
                for _ in range(500):
                    registry.counter("serve.submitted", tenant=tenant).inc()
                    registry.histogram(
                        "serve.latency.e2e_seconds", tenant=tenant
                    ).observe(0.01)
            except Exception as error:  # pragma: no cover - diagnostics
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(registry) == 8  # 4 tenants x (counter + histogram)
        for index in range(4):
            tenant = "t%d" % index
            assert registry.value("serve.submitted", tenant=tenant) == 1000
            hist = registry.get("serve.latency.e2e_seconds", tenant=tenant)
            assert hist.count == 1000
            _bounds, cumulative, count, _total = hist.bucket_snapshot()
            assert cumulative[-1] == count == 1000

    def test_concurrent_observe_keeps_buckets_consistent(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.5, 1.5))

        def observe():
            for i in range(4000):
                hist.observe(1.0 if i % 2 else 2.0)

        threads = [threading.Thread(target=observe) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        bounds, cumulative, count, total = hist.bucket_snapshot()
        assert count == 16000
        assert cumulative == [0, 8000]  # the 2.0s live in +Inf
        assert total == sum([1.0 if i % 2 else 2.0 for i in range(4000)]) * 4
