"""Export sinks: Chrome trace round-trip, JSONL, ring buffer, summary."""

import json

from repro.telemetry import RingBufferSink, Telemetry, chrome_trace_events


def build_session():
    """A session with nested spans, sim time, and a few events."""
    telemetry = Telemetry()
    with telemetry.span("pregelix:pagerank", category="pregelix"):
        with telemetry.span("load", category="phase") as load:
            telemetry.sim_clock.advance(3.0)
            load.annotate(input_bytes=1024)
        for step in (1, 2):
            with telemetry.span("superstep:%d" % step, category="superstep"):
                with telemetry.span("JoinOperator", category="task"):
                    telemetry.event(
                        "cache.evict", category="storage", node="node0", page_no=step
                    )
                telemetry.sim_clock.advance(1.5)
    telemetry.event("lsm.flush", category="storage", bytes=2048)
    telemetry.counter("engine.jobs_executed").inc(2)
    telemetry.histogram("pregelix.superstep_seconds").observe(0.25)
    return telemetry


def assert_well_formed_chrome(events):
    """ts monotone, B/E matched per tid, names nest like a stack."""
    last_ts = None
    stacks = {}
    for event in events:
        assert event["ph"] in ("B", "E", "i")
        assert isinstance(event["ts"], int) and event["ts"] >= 0
        if last_ts is not None:
            assert event["ts"] >= last_ts  # monotone
        last_ts = event["ts"]
        if event["ph"] == "B":
            stacks.setdefault(event["tid"], []).append(event["name"])
        elif event["ph"] == "E":
            stack = stacks.get(event["tid"])
            assert stack, "E event with no open B on tid %s" % event["tid"]
            assert stack.pop() == event["name"]  # properly nested
    for tid, stack in stacks.items():
        assert not stack, "unclosed B events on tid %s: %r" % (tid, stack)


class TestChromeTrace:
    def test_round_trip_is_valid_json(self, tmp_path):
        telemetry = build_session()
        path = str(tmp_path / "trace.json")
        assert telemetry.write_chrome_trace(path) == path
        with open(path) as handle:
            document = json.load(handle)  # valid JSON by construction
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["producer"] == "repro.telemetry"
        assert document["otherData"]["sim_seconds"] == 6.0
        assert_well_formed_chrome(document["traceEvents"])

    def test_matched_pairs_and_counts(self):
        telemetry = build_session()
        events = chrome_trace_events(telemetry)
        begins = [e for e in events if e["ph"] == "B"]
        ends = [e for e in events if e["ph"] == "E"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(begins) == len(ends) == 6  # job, load, 2x(superstep, task)
        assert len(instants) == 3  # 2 evictions + 1 flush
        assert {e["name"] for e in instants} == {"cache.evict", "lsm.flush"}

    def test_open_spans_are_excluded(self):
        telemetry = Telemetry()
        telemetry.tracer.start("never-finished")
        with telemetry.span("done"):
            pass
        names = [e["name"] for e in chrome_trace_events(telemetry)]
        assert names == ["done", "done"]

    def test_sim_seconds_arg_attached(self):
        telemetry = Telemetry()
        with telemetry.span("superstep:1") as span:
            telemetry.sim_clock.advance(4.5)
        assert span.sim_duration == 4.5
        begin = [e for e in chrome_trace_events(telemetry) if e["ph"] == "B"][0]
        assert begin["args"]["sim_seconds"] == 4.5

    def test_empty_session(self):
        document = Telemetry().chrome_trace()
        assert document["traceEvents"] == []


class TestJsonl:
    def test_records_cover_all_surfaces(self, tmp_path):
        telemetry = build_session()
        path = str(tmp_path / "telemetry.jsonl")
        count = telemetry.write_jsonl(path)
        with open(path) as handle:
            records = [json.loads(line) for line in handle]
        assert len(records) == count
        kinds = {record["type"] for record in records}
        assert kinds == {"span", "event", "metric"}
        histograms = [
            r for r in records if r["type"] == "metric" and r["kind"] == "histogram"
        ]
        assert histograms and "summary" in histograms[0]


class TestRingBufferSink:
    def test_collect_bounded(self):
        telemetry = build_session()
        sink = RingBufferSink(capacity=5)
        sink.collect(telemetry)
        assert len(sink) == 5  # only the newest five records retained
        assert all(isinstance(record, dict) for record in sink.records())

    def test_repeated_collect_does_not_duplicate(self):
        # Regression: collect() used to re-append the whole session every
        # call, so a periodic flusher filled the ring with N copies of
        # the oldest spans. Two collects with nothing new in between must
        # leave the buffer unchanged.
        telemetry = build_session()
        sink = RingBufferSink(capacity=100)
        sink.collect(telemetry)
        first = list(sink.records())
        sink.collect(telemetry)
        assert list(sink.records()) == first

    def test_incremental_collect_appends_only_new_records(self):
        telemetry = build_session()
        sink = RingBufferSink(capacity=100)
        sink.collect(telemetry)
        baseline = len(sink)
        with telemetry.span("late-span"):
            pass
        telemetry.event("late.event", category="test")
        telemetry.counter("engine.jobs_executed").inc()  # changed metric
        sink.collect(telemetry)
        added = [r for r in sink.records()[baseline:]]
        names = [r.get("name") for r in added]
        assert names.count("late-span") == 1
        assert names.count("late.event") == 1
        assert names.count("engine.jobs_executed") == 1
        # An untouched metric is not re-emitted.
        assert "pregelix.superstep_seconds" not in names


class TestSummary:
    def test_summary_lines_sections(self):
        telemetry = build_session()
        lines = telemetry.summary_lines()
        assert lines[0] == "-- telemetry summary --"
        text = "\n".join(lines)
        assert "metrics:" in text
        assert "engine.jobs_executed" in text
        assert "events:" in text
        assert "cache.evict" in text
        assert "spans (wall seconds by category/name):" in text
        assert "superstep/superstep" in text
        assert "simulated seconds: 6.000000" in text
