"""End-to-end telemetry: a traced PageRank run through the full stack.

These are the acceptance tests for the telemetry subsystem: one PageRank
run on a real (small-cache) cluster must produce a Chrome trace with
nested pregelix → superstep → job → task spans plus buffer-cache and LSM
storage events, and the statistics collector's summary must be exactly
reproducible from the metrics registry.
"""

import json

import pytest

from repro.algorithms import pagerank
from repro.graphs.generators import webmap_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.hyracks.storage.lsm_btree import LSMBTree
from repro.pregelix import PregelixDriver
from repro.telemetry import Telemetry

from tests.telemetry.test_export import assert_well_formed_chrome


@pytest.fixture
def traced_run(tmp_path):
    """One PageRank run on a cache-starved cluster, with tracing on."""
    telemetry = Telemetry()
    # A tiny buffer cache forces page evictions and dirty-page spills,
    # so the trace carries the storage events the paper's runs show.
    with HyracksCluster(
        num_nodes=2,
        root_dir=str(tmp_path / "cluster"),
        buffer_cache_bytes=2 * 4096,
        telemetry=telemetry,
    ) as cluster:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(dfs, "/in/web", webmap_graph(120, seed=7), num_files=2)
        driver = PregelixDriver(cluster, dfs)
        outcome = driver.run(
            pagerank.build_job(iterations=4), "/in/web", output_path="/out/pr"
        )
        # Drive the LSM lifecycle on the same telemetry session: the
        # in-job trees use the default 1 MB memory component, far larger
        # than this test graph, so flush/merge is exercised directly on
        # a node's (telemetry-bound) buffer cache.
        node = next(iter(cluster.nodes.values()))
        lsm = LSMBTree(node.buffer_cache, memory_budget_bytes=512, name="probe")
        for i in range(200):
            lsm.insert(b"key-%05d" % i, b"x" * 32)
        yield telemetry, outcome


class TestTracedPageRank:
    def test_nested_spans_cover_the_hierarchy(self, traced_run):
        telemetry, outcome = traced_run
        spans = {s.span_id: s for s in telemetry.tracer.finished_spans()}
        pregelix = telemetry.tracer.finished_spans(category="pregelix")
        assert len(pregelix) == 1 and pregelix[0].name == "pregelix:pagerank"
        supersteps = telemetry.tracer.finished_spans(category="superstep")
        assert [s.name for s in supersteps] == [
            "superstep:%d" % i for i in range(1, outcome.supersteps + 1)
        ]
        # superstep spans nest under the pregelix span; per-superstep job
        # spans nest under their superstep; task spans under their job.
        for superstep in supersteps:
            assert spans[superstep.parent_id].category == "pregelix"
        jobs = telemetry.tracer.finished_spans(category="job")
        assert jobs
        superstep_jobs = [
            j for j in jobs if spans.get(j.parent_id, None) in supersteps
        ]
        assert superstep_jobs
        tasks = telemetry.tracer.finished_spans(category="task")
        assert tasks
        assert any(
            spans.get(t.parent_id) in superstep_jobs for t in tasks
        )
        phases = {s.name for s in telemetry.tracer.finished_spans(category="phase")}
        assert phases == {"load", "dump"}

    def test_sim_clock_advanced_by_cost_model(self, traced_run):
        telemetry, outcome = traced_run
        assert telemetry.sim_clock.seconds > 0.0
        supersteps = telemetry.tracer.finished_spans(category="superstep")
        for span in supersteps:
            assert span.sim_duration > 0.0
            assert span.args["sim_seconds"] == pytest.approx(span.sim_duration)

    def test_storage_events_recorded(self, traced_run):
        telemetry, _outcome = traced_run
        counts = telemetry.events.counts()
        assert counts.get("cache.evict", 0) > 0
        assert counts.get("lsm.flush", 0) > 0
        assert counts.get("lsm.merge", 0) > 0
        assert telemetry.registry.value("storage.lsm.flushes") > 0
        # The node label distinguishes each machine's cache counters.
        assert telemetry.registry.value("storage.cache.misses", node="node0") > 0

    def test_chrome_trace_loads_and_is_well_formed(self, traced_run, tmp_path):
        telemetry, _outcome = traced_run
        path = str(tmp_path / "pagerank-trace.json")
        telemetry.write_chrome_trace(path)
        with open(path) as handle:
            document = json.load(handle)
        events = document["traceEvents"]
        assert_well_formed_chrome(events)
        names = {e["name"] for e in events}
        assert "pregelix:pagerank" in names
        assert "superstep:1" in names
        assert "cache.evict" in names
        assert "lsm.flush" in names
        categories = {e["cat"] for e in events}
        assert {"pregelix", "superstep", "job", "task", "storage"} <= categories

    def test_summary_reproduced_exactly_from_registry(self, traced_run):
        telemetry, outcome = traced_run
        stats = outcome.stats
        summary = stats.summary()
        # Registry-derived values equal the list-derived properties
        # exactly (not approximately): same floats, same ints.
        assert summary["supersteps"] == stats.num_supersteps
        assert summary["total_elapsed"] == stats.total_elapsed
        assert summary["avg_iteration_seconds"] == stats.avg_iteration_seconds
        assert summary["messages_sent"] == stats.total_messages_sent
        assert summary["network_bytes"] == stats.total_network_bytes
        assert summary["spill_bytes"] == stats.total_spill_bytes
        # And the raw registry agrees with the scoped reads.
        registry = telemetry.registry
        assert registry.value("pregelix.messages_sent") == stats.total_messages_sent

    def test_engine_counters_flow_into_registry(self, traced_run):
        telemetry, outcome = traced_run
        registry = telemetry.registry
        assert registry.value("engine.jobs_executed") > 0
        assert registry.value("engine.network.network_bytes") > 0
        # Connector accounting is labeled by connector kind.
        connector_tuples = sum(
            metric.value
            for metric in registry.iter_metrics()
            if metric.name == "connector.tuples"
        )
        assert connector_tuples > 0
        assert registry.value("pregelix.vertices_processed") == sum(
            record.vertices_processed for record in outcome.stats.supersteps
        )


class TestDisabledTelemetry:
    def test_disabled_session_still_runs_and_keeps_metrics(self, tmp_path):
        telemetry = Telemetry(enabled=False)
        with HyracksCluster(
            num_nodes=2, root_dir=str(tmp_path / "cluster"), telemetry=telemetry
        ) as cluster:
            dfs = MiniDFS(datanodes=cluster.node_ids())
            write_graph_to_dfs(dfs, "/in/web", webmap_graph(40, seed=3), num_files=2)
            driver = PregelixDriver(cluster, dfs)
            outcome = driver.run(pagerank.build_job(iterations=2), "/in/web")
        assert outcome.supersteps == 2
        assert len(telemetry.tracer) == 0
        assert len(telemetry.events) == 0
        # Metrics stay on: they are the statistics collector's substrate.
        assert telemetry.registry.value("engine.jobs_executed") > 0
