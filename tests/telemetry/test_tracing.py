"""Unit tests for the tracer: nesting, sim-clock stamps, retention."""

import threading

from repro.telemetry import SimClock, Tracer


class TestNesting:
    def test_parent_ids_and_depth(self):
        tracer = Tracer()
        with tracer.span("job", category="job") as outer:
            with tracer.span("superstep:1", category="superstep") as mid:
                with tracer.span("task", category="task") as inner:
                    assert tracer.current() is inner
                    assert inner.depth == 2
                assert tracer.current() is mid
            assert mid.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.depth == 0
        assert [s.name for s in tracer.finished_spans()] == [
            "task",
            "superstep:1",
            "job",
        ]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("job") as job:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = {s.name: s for s in tracer.finished_spans()}
        assert spans["a"].parent_id == job.span_id
        assert spans["b"].parent_id == job.span_id
        assert spans["a"].depth == spans["b"].depth == 1

    def test_current_is_none_at_top_level(self):
        assert Tracer().current() is None

    def test_manual_start_finish(self):
        tracer = Tracer()
        span = tracer.start("manual", category="x", detail=1)
        assert not span.finished
        tracer.finish(span)
        assert span.finished
        assert span.duration >= 0.0
        assert tracer.finished_spans(category="x") == [span]

    def test_out_of_order_finish_unwinds(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("inner")
        tracer.finish(outer)  # inner never finished; stack must unwind
        assert tracer.current() is None

    def test_filters(self):
        tracer = Tracer()
        with tracer.span("superstep:1", category="superstep"):
            pass
        with tracer.span("load", category="phase"):
            pass
        assert len(tracer.finished_spans(category="superstep")) == 1
        assert len(tracer.finished_spans(name_prefix="superstep:")) == 1
        assert len(tracer.finished_spans()) == 2


class TestSimClock:
    def test_spans_stamp_sim_time(self):
        clock = SimClock()
        tracer = Tracer(sim_clock=clock)
        clock.advance(5.0)
        with tracer.span("superstep:1") as span:
            clock.advance(2.5)
        assert span.sim_start == 5.0
        assert span.sim_end == 7.5
        assert span.sim_duration == 2.5
        record = span.to_record()
        assert record["sim_start"] == 5.0

    def test_no_clock_means_no_sim_stamps(self):
        tracer = Tracer()
        with tracer.span("x") as span:
            pass
        assert span.sim_start is None
        assert span.sim_duration is None
        assert "sim_start" not in span.to_record()


class TestRetention:
    def test_max_spans_drops_oldest(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            with tracer.span("s%d" % i):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [s.name for s in tracer.finished_spans()] == ["s2", "s3", "s4"]

    def test_disabled_tracer_keeps_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as span:
            assert tracer.current() is span  # nesting still works
        assert len(tracer) == 0
        assert tracer.dropped == 0


class TestThreads:
    def test_per_thread_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name) as span:
                seen[name] = (span.parent_id, span.tid)

        with tracer.span("main-root"):
            threads = [
                threading.Thread(target=worker, args=("t%d" % i,)) for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Worker threads have their own stacks: no parent inherited,
        # and their tids differ from the main thread's.
        for name in ("t0", "t1", "t2"):
            parent_id, tid = seen[name]
            assert parent_id is None
            assert tid != threading.get_ident()

    def test_annotate(self):
        tracer = Tracer()
        with tracer.span("x", a=1) as span:
            span.annotate(b=2)
        assert span.args == {"a": 1, "b": 2}


class TestScopedContext:
    def test_context_stamps_spans(self):
        tracer = Tracer()
        with tracer.context(job_id="j1"):
            with tracer.span("superstep:1"):
                pass
        with tracer.span("outside"):
            pass
        stamped, outside = tracer.finished_spans()
        assert stamped.args == {"job_id": "j1"}
        assert outside.args == {}

    def test_contexts_nest_and_restore(self):
        tracer = Tracer()
        with tracer.context(job_id="j1", tenant="a"):
            with tracer.context(run_id="r9", tenant="b"):
                with tracer.span("inner"):
                    pass
            with tracer.span("outer"):
                pass
        inner, outer = tracer.finished_spans()
        # Inner context merges onto the enclosing one; inner wins per key.
        assert inner.args == {"job_id": "j1", "run_id": "r9", "tenant": "b"}
        # Popping the inner context restores the enclosing args exactly.
        assert outer.args == {"job_id": "j1", "tenant": "a"}

    def test_explicit_span_args_beat_context(self):
        tracer = Tracer()
        with tracer.context(run_id="ambient"):
            with tracer.span("s", run_id="explicit", extra=1):
                pass
        (span,) = tracer.finished_spans()
        assert span.args == {"run_id": "explicit", "extra": 1}

    def test_current_context_is_a_copy(self):
        tracer = Tracer()
        assert tracer.current_context() == {}
        with tracer.context(job_id="j1"):
            captured = tracer.current_context()
            captured["job_id"] = "mutated"
            with tracer.span("s"):
                pass
        (span,) = tracer.finished_spans()
        assert span.args == {"job_id": "j1"}  # mutation did not leak

    def test_context_crosses_threads_via_capture(self):
        # The thread-pool pattern: capture on the submitting thread,
        # re-enter in the worker so its spans carry the same ids.
        tracer = Tracer()

        def worker(captured):
            with tracer.context(**captured):
                with tracer.span("worker-task"):
                    pass

        with tracer.context(job_id="j1", run_id="r1"):
            thread = threading.Thread(
                target=worker, args=(tracer.current_context(),)
            )
            thread.start()
            thread.join()
        (span,) = tracer.finished_spans()
        assert span.args == {"job_id": "j1", "run_id": "r1"}
        assert span.tid != threading.get_ident()

    def test_context_is_thread_local(self):
        tracer = Tracer()
        results = {}

        def worker():
            with tracer.span("bare"):
                pass
            results["context"] = tracer.current_context()

        with tracer.context(job_id="main-only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert results["context"] == {}
        (span,) = tracer.finished_spans()
        assert span.args == {}  # another thread's context never bleeds in
