"""Unit tests for the structured event log ring buffer."""

from repro.telemetry import EventLog


class TestEmit:
    def test_emit_and_snapshot(self):
        log = EventLog()
        log.emit("cache.evict", category="storage", node="node0", page_no=3)
        log.emit("lsm.flush", category="storage")
        log.emit("checkpoint.commit", category="checkpoint")
        assert len(log) == 3
        assert [e.name for e in log] == ["cache.evict", "lsm.flush", "checkpoint.commit"]
        evict = log.snapshot(name="cache.evict")[0]
        assert evict.args == {"node": "node0", "page_no": 3}
        assert evict.category == "storage"
        assert len(log.snapshot(category="storage")) == 2

    def test_timestamps_monotone(self):
        log = EventLog()
        for i in range(10):
            log.emit("e%d" % i)
        stamps = [e.ts for e in log]
        assert stamps == sorted(stamps)

    def test_to_record(self):
        log = EventLog()
        event = log.emit("x", category="c", k=1)
        record = event.to_record()
        assert record["type"] == "event"
        assert record["name"] == "x"
        assert record["args"] == {"k": 1}

    def test_disabled_log_is_a_noop(self):
        log = EventLog(enabled=False)
        assert log.emit("x") is None
        assert len(log) == 0
        assert log.counts() == {}


class TestRingBuffer:
    def test_capacity_drops_oldest(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("e%d" % i)
        assert len(log) == 4
        assert [e.name for e in log] == ["e6", "e7", "e8", "e9"]
        assert log.emitted == 10
        assert log.dropped == 6

    def test_counts_survive_eviction(self):
        log = EventLog(capacity=2)
        for _ in range(5):
            log.emit("cache.evict")
        log.emit("lsm.merge")
        assert log.counts() == {"cache.evict": 5, "lsm.merge": 1}
        assert len(log) == 2  # only the window is retained
