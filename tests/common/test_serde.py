"""Unit and property tests for the typed serialization layer."""

import pytest
from hypothesis import given, strategies as st

from repro.common import serde


class TestInt64:
    def test_roundtrip(self):
        for value in (0, 1, -1, 42, -(1 << 62), (1 << 62)):
            assert serde.INT64.loads(serde.INT64.dumps(value)) == value

    def test_fixed_size(self):
        assert len(serde.INT64.dumps(123456789)) == 8
        assert serde.INT64.sizeof(-5) == 8

    def test_encoding_preserves_order(self):
        values = [-(1 << 40), -17, -1, 0, 1, 9, 1 << 33]
        encoded = [serde.INT64.dumps(v) for v in values]
        assert encoded == sorted(encoded)

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip_property(self, value):
        assert serde.INT64.loads(serde.INT64.dumps(value)) == value

    @given(
        st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
        st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
    )
    def test_order_property(self, a, b):
        assert (a < b) == (serde.INT64.dumps(a) < serde.INT64.dumps(b))


class TestScalars:
    def test_float_roundtrip(self):
        for value in (0.0, -1.5, 3.14159, float("inf")):
            assert serde.FLOAT64.loads(serde.FLOAT64.dumps(value)) == value

    def test_bool_roundtrip(self):
        assert serde.BOOL.loads(serde.BOOL.dumps(True)) is True
        assert serde.BOOL.loads(serde.BOOL.dumps(False)) is False

    def test_bool_is_one_byte(self):
        assert serde.BOOL.sizeof(True) == 1

    def test_string_roundtrip(self):
        assert serde.STRING.loads(serde.STRING.dumps("héllo")) == "héllo"

    def test_bytes_passthrough(self):
        assert serde.BYTES.loads(serde.BYTES.dumps(b"\x00\xff")) == b"\x00\xff"

    def test_null_serde(self):
        assert serde.NULL.dumps(None) == b""
        assert serde.NULL.loads(b"") is None
        assert serde.NULL.sizeof(None) == 0


class TestComposites:
    def test_optional(self):
        codec = serde.OptionalSerde(serde.FLOAT64)
        assert codec.loads(codec.dumps(None)) is None
        assert codec.loads(codec.dumps(2.5)) == 2.5

    def test_tuple_roundtrip(self):
        codec = serde.TupleSerde(serde.INT64, serde.BOOL, serde.STRING)
        value = (7, True, "x")
        assert codec.loads(codec.dumps(value)) == value

    def test_tuple_arity_mismatch(self):
        codec = serde.TupleSerde(serde.INT64, serde.BOOL)
        with pytest.raises(ValueError):
            codec.dumps((1, True, "extra"))

    def test_list_roundtrip(self):
        codec = serde.ListSerde(serde.INT64)
        assert codec.loads(codec.dumps([])) == []
        assert codec.loads(codec.dumps([3, 1, 2])) == [3, 1, 2]

    def test_nested_composite(self):
        edge = serde.PairSerde(serde.INT64, serde.FLOAT64)
        codec = serde.TupleSerde(serde.INT64, serde.ListSerde(edge))
        value = (1, [(2, 0.5), (3, 1.5)])
        assert codec.loads(codec.dumps(value)) == value

    @given(st.lists(st.integers(min_value=-(1 << 62), max_value=1 << 62)))
    def test_list_property(self, values):
        codec = serde.ListSerde(serde.INT64)
        assert codec.loads(codec.dumps(values)) == values


class TestKeyHelpers:
    def test_key_roundtrip(self):
        assert serde.decode_key(serde.encode_key(99)) == 99

    def test_key_order(self):
        assert serde.encode_key(-3) < serde.encode_key(10)
