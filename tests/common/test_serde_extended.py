"""Tests for the packed/fixed-size serde extensions."""

import pytest
from hypothesis import given, strategies as st

from repro.common import serde


class TestPackedListSerde:
    def codec(self):
        return serde.PackedListSerde(
            serde.FixedPairSerde(serde.INT64, serde.FLOAT64, 8, 8), 16
        )

    def test_roundtrip(self):
        codec = self.codec()
        value = [(1, 0.5), (2, 1.5), (3, -2.0)]
        assert codec.loads(codec.dumps(value)) == value

    def test_empty(self):
        codec = self.codec()
        assert codec.loads(codec.dumps([])) == []

    def test_sizeof_exact(self):
        codec = self.codec()
        value = [(1, 1.0)] * 7
        assert codec.sizeof(value) == 4 + 7 * 16
        assert len(codec.dumps(value)) == codec.sizeof(value)

    def test_wrong_element_size_rejected(self):
        codec = serde.PackedListSerde(serde.STRING, 4)
        with pytest.raises(ValueError):
            codec.dumps(["toolongvalue"])

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-(1 << 62), max_value=1 << 62),
                st.floats(allow_nan=False, allow_infinity=True),
            ),
            max_size=50,
        )
    )
    def test_roundtrip_property(self, value):
        codec = self.codec()
        assert codec.loads(codec.dumps(value)) == value


class TestFixedPairSerde:
    def test_roundtrip_and_size(self):
        codec = serde.FixedPairSerde(serde.INT64, serde.FLOAT64, 8, 8)
        assert codec.fixed_size == 16
        assert codec.loads(codec.dumps((9, 2.5))) == (9, 2.5)
        assert codec.sizeof((9, 2.5)) == 16

    def test_mixed_widths(self):
        codec = serde.FixedPairSerde(serde.INT64, serde.BOOL, 8, 1)
        assert codec.fixed_size == 9
        assert codec.loads(codec.dumps((3, True))) == (3, True)


class TestOptionalPadding:
    def test_fixed_inner_pads_none(self):
        codec = serde.OptionalSerde(serde.FLOAT64)
        assert len(codec.dumps(None)) == len(codec.dumps(1.5)) == 9
        assert codec.loads(codec.dumps(None)) is None
        assert codec.sizeof(None) == codec.sizeof(2.0) == 9

    def test_variable_inner_stays_compact(self):
        codec = serde.OptionalSerde(serde.STRING)
        assert codec.dumps(None) == b"\x00"
        assert codec.loads(codec.dumps("hi")) == "hi"

    @given(st.one_of(st.none(), st.floats(allow_nan=False)))
    def test_roundtrip_property(self, value):
        codec = serde.OptionalSerde(serde.FLOAT64)
        assert codec.loads(codec.dumps(value)) == value


class TestFixedSizeMarkers:
    def test_scalar_serdes_declare_fixed_size(self):
        assert serde.INT64.fixed_size == 8
        assert serde.FLOAT64.fixed_size == 8
        assert serde.BOOL.fixed_size == 1
        assert not hasattr(serde.STRING, "fixed_size")

    def test_vertex_serde_uses_packing_for_fixed_edges(self):
        from repro.pregelix.types import vertex_value_serde

        packed = vertex_value_serde(serde.FLOAT64, serde.FLOAT64)
        unpacked = vertex_value_serde(serde.FLOAT64, serde.STRING)
        edges_fixed = [(i, 1.0) for i in range(20)]
        edges_var = [(i, "w") for i in range(20)]
        packed_bytes = len(packed.dumps((False, 1.0, edges_fixed)))
        unpacked_bytes = len(unpacked.dumps((False, 1.0, edges_var)))
        # Packing saves the per-element framing: ~16B/edge vs ~25B+.
        assert packed_bytes < unpacked_bytes
        assert packed.loads(packed.dumps((False, 1.0, edges_fixed)))[2] == edges_fixed
