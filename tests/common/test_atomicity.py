"""Satellite regression tests for the concurrency audit (DESIGN.md §13).

Parallel clone execution turned several previously single-threaded
read-modify-write paths into shared state. Each test here pins one
audited path by hammering it from many threads and asserting the exact
count a serial run would produce — a lost update fails deterministically
enough in 8×1000 iterations to catch a reintroduced race.

Audited paths: telemetry counters/gauges/histograms, BufferCacheStats,
MemoryBudget, FaultInjector.check, NodeContext.check_failure,
MiniDFS block placement, and FileManager id allocation.
"""

import threading

from repro.chaos.faults import FaultInjector, FaultPlan, FaultSpec
from repro.common.accounting import MemoryBudget
from repro.common.errors import WorkerFailure
from repro.hdfs import MiniDFS
from repro.hyracks.engine import NodeContext
from repro.hyracks.storage.file_manager import FileManager
from repro.telemetry.registry import MetricsRegistry

NUM_THREADS = 8
ITERATIONS = 1000


def hammer(fn, num_threads=NUM_THREADS):
    """Run ``fn(thread_id)`` concurrently; re-raise the first error."""
    errors = []
    barrier = threading.Barrier(num_threads)

    def runner(thread_id):
        try:
            barrier.wait()
            fn(thread_id)
        except Exception as error:
            errors.append(error)

    threads = [
        threading.Thread(target=runner, args=(t,)) for t in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads), "hammer hung"
    if errors:
        raise errors[0]


def test_registry_counter_increments_are_atomic():
    registry = MetricsRegistry()
    counter = registry.counter("atomicity.count")
    hammer(lambda t: [counter.inc() for _ in range(ITERATIONS)])
    assert counter.value == NUM_THREADS * ITERATIONS


def test_registry_gauge_add_is_atomic():
    registry = MetricsRegistry()
    gauge = registry.gauge("atomicity.gauge")

    def work(thread_id):
        for _ in range(ITERATIONS):
            gauge.inc(3)
            gauge.dec(2)

    hammer(work)
    assert gauge.value == NUM_THREADS * ITERATIONS


def test_registry_histogram_observations_are_atomic():
    registry = MetricsRegistry()
    histogram = registry.histogram("atomicity.hist")
    hammer(lambda t: [histogram.observe(1.0) for _ in range(ITERATIONS)])
    assert histogram.summary()["count"] == NUM_THREADS * ITERATIONS


def test_buffer_cache_stats_record_is_atomic():
    from repro.hyracks.storage.buffer_cache import BufferCacheStats

    stats = BufferCacheStats()

    def work(thread_id):
        for _ in range(ITERATIONS):
            stats.record("hits")
            stats.record("misses", 2)

    hammer(work)
    snapshot = stats.snapshot()
    assert snapshot["hits"] == NUM_THREADS * ITERATIONS
    assert snapshot["misses"] == 2 * NUM_THREADS * ITERATIONS


def test_memory_budget_balanced_allocate_release():
    budget = MemoryBudget(NUM_THREADS * 64)

    def work(thread_id):
        for _ in range(ITERATIONS):
            budget.allocate(64)
            budget.release(64)

    hammer(work)
    assert budget.used == 0
    assert budget.peak <= budget.capacity


def test_fault_injector_fires_exactly_once():
    plan = FaultPlan([FaultSpec(site="operator.open", action="delay", at_hit=17)])
    injector = FaultInjector(plan)

    def work(thread_id):
        for _ in range(ITERATIONS // 4):
            injector.check("operator.open", node="node0")

    hammer(work)
    # checks/hits are shared RMWs: every check counted, no overshoot past
    # the firing hit (a lost update would let two threads both observe
    # hits < at_hit and fire twice), exactly one fire recorded.
    assert injector.checks == NUM_THREADS * (ITERATIONS // 4)
    assert plan.specs[0].hits == plan.specs[0].at_hit
    assert len(injector.fired) == 1


def test_node_failure_countdown_fires_exactly_once(tmp_path):
    node = NodeContext(
        "node0",
        root_dir=str(tmp_path / "n0"),
        memory_bytes=1 << 20,
        cache_bytes=1 << 16,
        page_size=4096,
    )
    checks_per_thread = 50
    node.inject_failure(after_tasks=NUM_THREADS * checks_per_thread)
    # Concurrent countdown: exactly after_tasks checks pass unharmed...
    hammer(lambda t: [node.check_failure() for _ in range(checks_per_thread)])
    # ...and the very next one fires (a lost decrement would survive it).
    failures = []
    try:
        node.check_failure()
    except WorkerFailure as failure:
        failures.append(failure)
    assert len(failures) == 1
    assert not node.alive


def test_minidfs_placement_stays_evenly_spread():
    dfs = MiniDFS(datanodes=["n0", "n1", "n2", "n3"], replication=1)
    writes_per_thread = 100

    def work(thread_id):
        for index in range(writes_per_thread):
            dfs.write("/t%d/f%d" % (thread_id, index), b"x")

    hammer(work)
    placements = [
        host
        for path in dfs.list_files()
        for location in dfs.block_locations(path)
        for host in location.hosts
    ]
    total = NUM_THREADS * writes_per_thread
    assert len(placements) == total
    # The round-robin cursor is advanced atomically, so the spread is
    # exact, not merely approximate.
    for node in dfs.datanodes:
        assert placements.count(node) == total // len(dfs.datanodes)


def test_file_manager_id_allocation_is_unique(tmp_path):
    files = FileManager(str(tmp_path / "fm"))
    paged_ids = []
    temp_paths = []

    def work(thread_id):
        for _ in range(50):
            paged_ids.append(files.create_paged_file())
            temp_paths.append(files.create_temp_path("run"))

    hammer(work)
    assert len(set(paged_ids)) == len(paged_ids) == NUM_THREADS * 50
    assert len(set(temp_paths)) == len(temp_paths) == NUM_THREADS * 50
    files.close()
