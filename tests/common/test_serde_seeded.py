"""Seeded random round-trip tests for the serialization layer.

Complements the hypothesis suites with explicit ``random.Random(seed)``
generation: the exact byte streams exercised are reproducible from the
seed alone (the same property the chaos harness relies on), and the
generator is shaped like real Pregelix data — vertex ids, optional
float/int values, and edge lists including empty ones — plus the
boundary-length payloads the fuzzers tend to find last.
"""

import math
import random

import pytest

from repro.common import serde

SEEDS = [0, 7, 1234, 987654321]

#: The wire shape of a vertex record: (vid, optional value, edge list).
VERTEX_CODEC = serde.TupleSerde(
    serde.INT64,
    serde.OptionalSerde(serde.FLOAT64),
    serde.ListSerde(serde.PairSerde(serde.INT64, serde.FLOAT64)),
)

INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1


def random_vid(rng):
    # Mix small dense ids (the common case) with full-range boundary ids.
    if rng.random() < 0.8:
        return rng.randrange(0, 1 << 20)
    return rng.choice([0, 1, -1, INT64_MIN, INT64_MAX, rng.randrange(INT64_MIN, INT64_MAX)])


def random_value(rng):
    roll = rng.random()
    if roll < 0.15:
        return None
    if roll < 0.3:
        return rng.choice([0.0, -0.0, math.inf, -math.inf, 1e-308, 1e308])
    return rng.uniform(-1e6, 1e6)


def random_edges(rng, max_degree=40):
    # Degree 0 (an empty edge list) must stay a first-class citizen.
    degree = rng.choice([0, 0, 1, rng.randrange(0, max_degree)])
    return [(random_vid(rng), rng.uniform(0.0, 100.0)) for _ in range(degree)]


@pytest.mark.parametrize("seed", SEEDS)
def test_vertex_record_roundtrip(seed):
    rng = random.Random(seed)
    for _ in range(200):
        record = (random_vid(rng), random_value(rng), random_edges(rng))
        blob = VERTEX_CODEC.dumps(record)
        assert VERTEX_CODEC.loads(blob) == record
        assert VERTEX_CODEC.sizeof(record) == len(blob)


@pytest.mark.parametrize("seed", SEEDS)
def test_vid_roundtrip_and_order(seed):
    rng = random.Random(seed)
    vids = [random_vid(rng) for _ in range(500)]
    encoded = [serde.INT64.dumps(v) for v in vids]
    for vid, blob in zip(vids, encoded):
        assert serde.INT64.loads(blob) == vid
        assert len(blob) == 8
    # Byte order must agree with numeric order (index keys rely on it).
    paired = sorted(zip(vids, encoded))
    assert [blob for _v, blob in paired] == sorted(encoded)


@pytest.mark.parametrize("seed", SEEDS)
def test_float_value_roundtrip(seed):
    rng = random.Random(seed)
    for _ in range(500):
        value = random_value(rng)
        codec = serde.OptionalSerde(serde.FLOAT64)
        loaded = codec.loads(codec.dumps(value))
        if value is None:
            assert loaded is None
        else:
            assert loaded == value and math.copysign(1, loaded) == math.copysign(1, value)


@pytest.mark.parametrize("seed", SEEDS)
def test_edge_list_roundtrip_including_empty(seed):
    rng = random.Random(seed)
    codec = serde.ListSerde(serde.PairSerde(serde.INT64, serde.FLOAT64))
    saw_empty = False
    for _ in range(200):
        edges = random_edges(rng)
        saw_empty = saw_empty or not edges
        assert codec.loads(codec.dumps(edges)) == edges
    assert saw_empty, "generator never produced an empty edge list"
    assert codec.loads(codec.dumps([])) == []


@pytest.mark.parametrize("seed", SEEDS)
def test_string_and_bytes_boundary_lengths(seed):
    rng = random.Random(seed)
    # Explicit boundaries around typical length-prefix/page granularities.
    lengths = [0, 1, 2, 255, 256, 257, 4095, 4096, 4097]
    lengths += [rng.randrange(0, 1 << 14) for _ in range(20)]
    for length in lengths:
        payload = bytes(rng.getrandbits(8) for _ in range(length))
        assert serde.BYTES.loads(serde.BYTES.dumps(payload)) == payload
        text = "".join(rng.choice("aé☃z0 ") for _ in range(length))
        assert serde.STRING.loads(serde.STRING.dumps(text)) == text


@pytest.mark.parametrize("seed", SEEDS)
def test_packed_edge_list_roundtrip(seed):
    rng = random.Random(seed)
    codec = serde.PackedListSerde(
        serde.FixedPairSerde(serde.INT64, serde.FLOAT64, 8, 8), 16
    )
    for _ in range(100):
        degree = rng.choice([0, 1, rng.randrange(0, 64)])
        edges = [
            (rng.randrange(INT64_MIN, INT64_MAX), rng.uniform(-1e9, 1e9))
            for _ in range(degree)
        ]
        blob = codec.dumps(edges)
        assert codec.loads(blob) == edges
        assert len(blob) == codec.sizeof(edges)


def test_same_seed_generates_same_stream():
    """The generator itself must be replayable — one seed, one dataset."""

    def dataset(seed):
        rng = random.Random(seed)
        return [
            (random_vid(rng), random_value(rng), random_edges(rng))
            for _ in range(50)
        ]

    assert dataset(42) == dataset(42)
    assert dataset(42) != dataset(43)
