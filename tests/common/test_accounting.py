"""Tests for memory budgets and counters."""

import threading

import pytest

from repro.common.accounting import Counters, IOCounters, MemoryBudget
from repro.common.errors import MemoryBudgetExceeded
from repro.telemetry import MetricsRegistry


class TestMemoryBudget:
    def test_allocate_and_release(self):
        budget = MemoryBudget(100)
        budget.allocate(40)
        budget.allocate(30)
        assert budget.used == 70
        assert budget.remaining == 30
        budget.release(50)
        assert budget.used == 20

    def test_over_allocation_raises(self):
        budget = MemoryBudget(100)
        budget.allocate(90)
        with pytest.raises(MemoryBudgetExceeded) as info:
            budget.allocate(20, what="messages")
        assert info.value.requested == 20
        assert info.value.used == 90
        assert "messages" in str(info.value)

    def test_failed_allocation_leaves_usage_unchanged(self):
        budget = MemoryBudget(10)
        with pytest.raises(MemoryBudgetExceeded):
            budget.allocate(11)
        assert budget.used == 0

    def test_try_allocate(self):
        budget = MemoryBudget(10)
        assert budget.try_allocate(10)
        assert not budget.try_allocate(1)
        assert budget.used == 10

    def test_peak_tracking(self):
        budget = MemoryBudget(100)
        budget.allocate(80)
        budget.release(70)
        budget.allocate(20)
        assert budget.peak == 80

    def test_release_more_than_used_raises(self):
        budget = MemoryBudget(10)
        budget.allocate(5)
        with pytest.raises(ValueError):
            budget.release(6)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryBudget(-1)

    def test_reset(self):
        budget = MemoryBudget(10)
        budget.allocate(7)
        budget.reset()
        assert budget.used == 0

    def test_reset_clears_peak(self):
        # Regression: reset() used to clear only _used, leaking one
        # job's high-water mark into the next job's report.
        budget = MemoryBudget(100)
        budget.allocate(80)
        budget.reset()
        assert budget.peak == 0
        budget.allocate(30)
        assert budget.peak == 30


class TestIOCounters:
    def test_recording(self):
        io = IOCounters()
        io.record_read(100)
        io.record_write(200)
        io.record_network(50, messages=3)
        snap = io.snapshot()
        assert snap["disk_reads"] == 1
        assert snap["disk_read_bytes"] == 100
        assert snap["disk_write_bytes"] == 200
        assert snap["network_bytes"] == 50
        assert snap["network_messages"] == 3

    def test_merge(self):
        a, b = IOCounters(), IOCounters()
        a.record_read(10)
        b.record_read(5)
        b.record_write(7)
        a.merge(b)
        assert a.disk_read_bytes == 15
        assert a.disk_write_bytes == 7


class TestCounters:
    def test_add_get(self):
        counters = Counters()
        counters.add("messages", 5)
        counters.add("messages", 2)
        assert counters.get("messages") == 7
        assert counters.get("missing") == 0
        assert "messages" in counters

    def test_merge(self):
        a, b = Counters(), Counters()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_set_overrides(self):
        counters = Counters()
        counters.add("x", 5)
        counters.set("x", 1)
        assert counters.get("x") == 1


class TestThreadSafety:
    def test_concurrent_io_recording(self):
        io = IOCounters()

        def spin():
            for _ in range(2000):
                io.record_read(1)
                io.record_network(2)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert io.disk_reads == 8000
        assert io.disk_read_bytes == 8000
        assert io.network_bytes == 16000

    def test_concurrent_counter_adds(self):
        counters = Counters()

        def spin():
            for _ in range(2000):
                counters.add("messages")

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counters.get("messages") == 8000


class TestRegistryBinding:
    def test_io_counters_mirror_when_bound(self):
        registry = MetricsRegistry()
        io = IOCounters(registry, prefix="node.io", node="node0")
        io.record_read(100)
        io.record_write(50)
        io.record_network(25, messages=2)
        assert registry.value("node.io.disk_read_bytes", node="node0") == 100
        assert registry.value("node.io.disk_writes", node="node0") == 1
        assert registry.value("node.io.network_messages", node="node0") == 2

    def test_io_merge_mirrors_into_registry(self):
        registry = MetricsRegistry()
        bound = IOCounters(registry, prefix="total")
        unbound = IOCounters()
        unbound.record_read(64)
        bound.merge(unbound)
        assert bound.disk_read_bytes == 64
        assert registry.value("total.disk_read_bytes") == 64

    def test_unbound_counters_touch_no_registry(self):
        io = IOCounters()
        io.record_read(10)  # must not raise, no registry involved
        assert io._mirror is None

    def test_counters_add_and_set_mirror(self):
        registry = MetricsRegistry()
        counters = Counters(registry, prefix="engine.counters")
        counters.add("messages_sent", 7)
        counters.set("live_partitions", 3)
        assert registry.value("engine.counters.messages_sent") == 7
        assert registry.value("engine.counters.live_partitions") == 3
        counters.set("live_partitions", 2)  # gauges move both ways
        assert registry.value("engine.counters.live_partitions") == 2
