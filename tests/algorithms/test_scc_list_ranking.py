"""Tests for the SCC and list-ranking building blocks (Section 6)."""

import random

import networkx as nx
import pytest

from repro.algorithms import list_ranking, scc
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver


@pytest.fixture
def cluster(tmp_path):
    with HyracksCluster(num_nodes=3, root_dir=str(tmp_path / "c")) as c:
        yield c


@pytest.fixture
def dfs(cluster):
    return MiniDFS(datanodes=cluster.node_ids())


@pytest.fixture
def driver(cluster, dfs):
    return PregelixDriver(cluster, dfs)


def run_job(driver, dfs, module, job, vertices, name):
    write_graph_to_dfs(dfs, "/in/%s" % name, iter(vertices), num_files=3)
    outcome = driver.run(
        job,
        "/in/%s" % name,
        output_path="/out/%s" % name,
        parse_line=module.parse_line,
        format_record=module.format_record,
    )
    values = {}
    for line in driver.read_output("/out/%s" % name):
        fields = line.split()
        values[int(fields[0])] = int(fields[1])
    return outcome, values


def digraph(edges, num_vertices):
    adjacency = {v: [] for v in range(num_vertices)}
    for u, v in edges:
        adjacency[u].append((v, 1.0))
    return [(v, None, targets) for v, targets in adjacency.items()]


def reference_scc(edges, num_vertices):
    graph = nx.DiGraph()
    graph.add_nodes_from(range(num_vertices))
    graph.add_edges_from(edges)
    labels = {}
    for component in nx.strongly_connected_components(graph):
        for vertex in component:
            labels[vertex] = frozenset(component)
    return labels


def assert_matches_reference(values, edges, num_vertices):
    expected = reference_scc(edges, num_vertices)
    # Same partition: two vertices share a reproduction label iff they
    # share a reference component.
    by_label = {}
    for vertex, label in values.items():
        by_label.setdefault(label, set()).add(vertex)
    for members in by_label.values():
        reference_components = {expected[v] for v in members}
        assert len(reference_components) == 1
        assert members == set(next(iter(reference_components)))


class TestSCC:
    def test_single_cycle(self, driver, dfs):
        edges = [(0, 1), (1, 2), (2, 0)]
        _outcome, values = run_job(
            driver, dfs, scc, scc.build_job(), digraph(edges, 3), "cycle"
        )
        assert len(set(values.values())) == 1

    def test_two_cycles_and_a_bridge(self, driver, dfs):
        edges = [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]
        _outcome, values = run_job(
            driver, dfs, scc, scc.build_job(), digraph(edges, 4), "two"
        )
        assert values[0] == values[1]
        assert values[2] == values[3]
        assert values[0] != values[2]
        assert_matches_reference(values, edges, 4)

    def test_dag_is_all_singletons(self, driver, dfs):
        edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
        _outcome, values = run_job(
            driver, dfs, scc, scc.build_job(), digraph(edges, 4), "dag"
        )
        assert len(set(values.values())) == 4
        # Every vertex labels itself (singleton SCC root is the vertex).
        assert all(values[v] == v for v in range(4))

    def test_matches_networkx_on_random_digraph(self, driver, dfs):
        rng = random.Random(7)
        n = 60
        edges = []
        for _ in range(150):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.append((u, v))
        _outcome, values = run_job(
            driver, dfs, scc, scc.build_job(), digraph(edges, n), "rand"
        )
        assert_matches_reference(values, edges, n)

    def test_isolated_vertices(self, driver, dfs):
        _outcome, values = run_job(
            driver, dfs, scc, scc.build_job(), digraph([], 5), "iso"
        )
        assert values == {v: v for v in range(5)}

    def test_all_vertices_assigned(self, driver, dfs):
        rng = random.Random(3)
        n = 40
        edges = [(rng.randrange(n), rng.randrange(n)) for _ in range(100)]
        edges = [(u, v) for u, v in edges if u != v]
        _outcome, values = run_job(
            driver, dfs, scc, scc.build_job(), digraph(edges, n), "assigned"
        )
        assert len(values) == n
        assert all(label >= 0 for label in values.values())


def linked_list(order):
    """A list graph visiting ``order``; returns (vertices, expected ranks)."""
    vertices = []
    ranks = {}
    for position, vid in enumerate(order):
        successor = order[position + 1] if position + 1 < len(order) else None
        edges = [(successor, 1.0)] if successor is not None else []
        vertices.append((vid, None, edges))
        ranks[vid] = len(order) - 1 - position
    return vertices, ranks


class TestListRanking:
    def test_sequential_list(self, driver, dfs):
        vertices, expected = linked_list(list(range(10)))
        _outcome, values = run_job(
            driver, dfs, list_ranking, list_ranking.build_job(), vertices, "seq"
        )
        assert values == expected

    def test_shuffled_list(self, driver, dfs):
        order = list(range(40))
        random.Random(11).shuffle(order)
        vertices, expected = linked_list(order)
        _outcome, values = run_job(
            driver, dfs, list_ranking, list_ranking.build_job(), vertices, "shuf"
        )
        assert values == expected

    def test_logarithmic_rounds(self, driver, dfs):
        """Pointer jumping finishes in O(log n) rounds, not O(n)."""
        order = list(range(64))
        vertices, _expected = linked_list(order)
        outcome, values = run_job(
            driver, dfs, list_ranking, list_ranking.build_job(), vertices, "log"
        )
        assert values[0] == 63
        # 64-element list: ~6 jump rounds at 2 supersteps each, plus
        # startup/termination; far below the 64 a sequential walk needs.
        assert outcome.supersteps <= 20

    def test_single_vertex(self, driver, dfs):
        vertices, expected = linked_list([5])
        _outcome, values = run_job(
            driver, dfs, list_ranking, list_ranking.build_job(), vertices, "one"
        )
        assert values == {5: 0}

    def test_two_lists(self, driver, dfs):
        first, ranks_a = linked_list([0, 1, 2])
        second, ranks_b = linked_list([10, 11, 12, 13])
        _outcome, values = run_job(
            driver,
            dfs,
            list_ranking,
            list_ranking.build_job(),
            first + second,
            "two",
        )
        assert values == {**ranks_a, **ranks_b}
