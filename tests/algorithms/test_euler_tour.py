"""Tests for the Euler tour / pre-ordering composition (Section 6)."""

import random

import pytest

from repro.algorithms.euler_tour import (
    build_arc_graph,
    compute_preorder,
    preorder_from_ranks,
)
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver


def undirected_tree(parent_of):
    """Tree from ``{child: parent}``; returns (vid, value, edges) tuples."""
    adjacency = {}
    vertices = set(parent_of) | set(parent_of.values())
    for vertex in vertices:
        adjacency[vertex] = set()
    for child, parent in parent_of.items():
        adjacency[child].add(parent)
        adjacency[parent].add(child)
    return [
        (vertex, None, [(n, 1.0) for n in sorted(neighbors)])
        for vertex, neighbors in sorted(adjacency.items())
    ]


def reference_preorder(tree_vertices, root):
    """Recursive DFS visiting children in sorted adjacency order."""
    adjacency = {vid: [d for d, _w in edges] for vid, _v, edges in tree_vertices}
    order = {}
    stack = [root]
    seen = {root}
    while stack:
        vertex = stack.pop()
        order[vertex] = len(order)
        for neighbor in reversed(sorted(adjacency[vertex])):
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return order


class TestArcGraph:
    def test_path_tree_arcs(self):
        tree = undirected_tree({1: 0, 2: 1})
        arc_vertices, arcs, start = build_arc_graph(tree, root=0)
        assert len(arcs) == 4  # two undirected edges -> four arcs
        # Exactly one arc has no successor (the broken cycle end).
        tails = [vid for vid, _v, edges in arc_vertices if not edges]
        assert len(tails) == 1
        assert arcs[start] == (0, 1)

    def test_tour_visits_every_arc_once(self):
        tree = undirected_tree({1: 0, 2: 0, 3: 1, 4: 1})
        arc_vertices, arcs, start = build_arc_graph(tree, root=0)
        successor = {vid: edges[0][0] if edges else None for vid, _v, edges in arc_vertices}
        visited = []
        arc = start
        while arc is not None:
            visited.append(arc)
            arc = successor[arc]
        assert sorted(visited) == sorted(arcs)

    def test_single_vertex_tree(self):
        arc_vertices, arcs, start = build_arc_graph([(0, None, [])], root=0)
        assert arc_vertices == [] and arcs == {} and start is None

    def test_unknown_root_rejected(self):
        with pytest.raises(ValueError):
            build_arc_graph([(0, None, [])], root=9)


class TestPreorderMath:
    def test_manual_path(self):
        # Tree 0-1-2: tour (0,1)(1,2)(2,1)(1,0); ranks: end at (1,0).
        tree = undirected_tree({1: 0, 2: 1})
        _arc_vertices, arcs, _start = build_arc_graph(tree, root=0)
        # positions: rank r -> position (n-1-r)
        ranks = {}
        order = [(0, 1), (1, 2), (2, 1), (1, 0)]
        ids = {arc: aid for aid, arc in arcs.items()}
        for position, arc in enumerate(order):
            ranks[ids[arc]] = len(order) - 1 - position
        preorder = preorder_from_ranks(ranks, arcs, root=0)
        assert preorder == {0: 0, 1: 1, 2: 2}


@pytest.fixture
def driver(tmp_path):
    with HyracksCluster(num_nodes=2, root_dir=str(tmp_path / "c")) as cluster:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        yield PregelixDriver(cluster, dfs)


class TestEndToEnd:
    def test_path_tree(self, driver):
        tree = undirected_tree({1: 0, 2: 1, 3: 2})
        preorder = compute_preorder(driver, tree, root=0)
        assert preorder == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_branching_tree(self, driver):
        tree = undirected_tree({1: 0, 2: 0, 3: 1, 4: 1, 5: 2})
        preorder = compute_preorder(driver, tree, root=0)
        assert preorder == reference_preorder(tree, 0)

    def test_random_tree_matches_dfs(self, driver):
        rng = random.Random(13)
        parent_of = {child: rng.randrange(child) for child in range(1, 40)}
        tree = undirected_tree(parent_of)
        preorder = compute_preorder(driver, tree, root=0)
        assert preorder == reference_preorder(tree, 0)

    def test_nonzero_root(self, driver):
        tree = undirected_tree({0: 1, 2: 1})
        preorder = compute_preorder(driver, tree, root=1, workspace="/euler2")
        assert preorder[1] == 0
        assert preorder == reference_preorder(tree, 1)

    def test_single_vertex(self, driver):
        assert compute_preorder(driver, [(7, None, [])], root=7) == {7: 0}
