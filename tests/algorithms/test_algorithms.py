"""Correctness tests for the built-in algorithm library (Section 6)."""

import itertools

import pytest

from repro.algorithms import (
    bfs_spanning_tree,
    graph_cleaning,
    graph_sampling,
    maximal_cliques,
    reachability,
    triangle_counting,
)
from repro.graphs.generators import btc_graph, chain_graph, de_bruijn_path_graph
from repro.graphs.io import format_graph_line, write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver


@pytest.fixture
def cluster(tmp_path):
    with HyracksCluster(num_nodes=3, root_dir=str(tmp_path / "c")) as c:
        yield c


@pytest.fixture
def dfs(cluster):
    return MiniDFS(datanodes=cluster.node_ids())


@pytest.fixture
def driver(cluster, dfs):
    return PregelixDriver(cluster, dfs)


def run(driver, dfs, module, job, vertices, name):
    write_graph_to_dfs(dfs, "/in/%s" % name, iter(vertices), num_files=3)
    outcome = driver.run(
        job,
        "/in/%s" % name,
        output_path="/out/%s" % name,
        parse_line=module.parse_line,
        format_record=module.format_record,
    )
    values = {}
    for line in driver.read_output("/out/%s" % name):
        fields = line.split()
        values[int(fields[0])] = None if fields[1] == "_" else int(fields[1])
    return outcome, values


def undirected_clique(ids):
    """A fully connected undirected vertex set."""
    ids = list(ids)
    return [
        (v, None, [(u, 1.0) for u in ids if u != v])
        for v in ids
    ]


class TestReachability:
    def test_chain_reachability(self, driver, dfs):
        vertices = list(chain_graph(8))
        outcome, values = run(
            driver, dfs, reachability, reachability.build_job(sources=(3,)), vertices, "reach"
        )
        for vid in range(8):
            assert values[vid] == (1 if vid >= 3 else 0)

    def test_multiple_sources(self, driver, dfs):
        vertices = [
            (0, None, [(1, 1.0)]),
            (1, None, []),
            (5, None, [(6, 1.0)]),
            (6, None, []),
            (9, None, []),
        ]
        outcome, values = run(
            driver, dfs, reachability, reachability.build_job(sources=(0, 5)), vertices, "multi"
        )
        assert values == {0: 1, 1: 1, 5: 1, 6: 1, 9: 0}


class TestTriangleCounting:
    def test_single_triangle(self, driver, dfs):
        vertices = undirected_clique([0, 1, 2])
        outcome, values = run(
            driver, dfs, triangle_counting, triangle_counting.build_job(), vertices, "tri1"
        )
        assert outcome.gs.aggregate == 1

    def test_clique_triangle_count(self, driver, dfs):
        n = 6
        vertices = undirected_clique(range(n))
        outcome, _values = run(
            driver, dfs, triangle_counting, triangle_counting.build_job(), vertices, "tri2"
        )
        expected = n * (n - 1) * (n - 2) // 6
        assert outcome.gs.aggregate == expected

    def test_triangle_free_graph(self, driver, dfs):
        vertices = list(chain_graph(10, bidirectional=True))
        outcome, _values = run(
            driver, dfs, triangle_counting, triangle_counting.build_job(), vertices, "tri3"
        )
        assert outcome.gs.aggregate in (None, 0)

    def test_matches_brute_force_on_random_graph(self, driver, dfs):
        vertices = list(btc_graph(60, seed=12))
        adjacency = {vid: {d for d, _w in edges} for vid, _v, edges in vertices}
        expected = 0
        for v, u, w in itertools.combinations(sorted(adjacency), 3):
            if u in adjacency[v] and w in adjacency[v] and w in adjacency[u]:
                expected += 1
        outcome, _values = run(
            driver, dfs, triangle_counting, triangle_counting.build_job(), vertices, "tri4"
        )
        assert (outcome.gs.aggregate or 0) == expected


class TestMaximalCliques:
    def test_single_clique(self, driver, dfs):
        vertices = undirected_clique([0, 1, 2, 3])
        outcome, values = run(
            driver, dfs, maximal_cliques, maximal_cliques.build_job(), vertices, "clique1"
        )
        assert values[0] == 4  # the 4-clique is anchored at its min id
        assert outcome.gs.aggregate == 1

    def test_two_disjoint_triangles(self, driver, dfs):
        vertices = undirected_clique([0, 1, 2]) + undirected_clique([10, 11, 12])
        outcome, values = run(
            driver, dfs, maximal_cliques, maximal_cliques.build_job(), vertices, "clique2"
        )
        assert values[0] == 3
        assert values[10] == 3
        assert outcome.gs.aggregate == 2


class TestBFSSpanningTree:
    def test_chain_parents(self, driver, dfs):
        vertices = list(chain_graph(6, bidirectional=True))
        outcome, values = run(
            driver, dfs, bfs_spanning_tree, bfs_spanning_tree.build_job(root=0), vertices, "bfs"
        )
        assert values[0] == 0
        for vid in range(1, 6):
            assert values[vid] == vid - 1

    def test_parents_form_valid_bfs_tree(self, driver, dfs):
        vertices = list(btc_graph(80, seed=4))
        outcome, values = run(
            driver, dfs, bfs_spanning_tree, bfs_spanning_tree.build_job(root=0), vertices, "bfs2"
        )
        # BFS levels from a reference traversal.
        from collections import deque

        adjacency = {vid: [d for d, _w in edges] for vid, _v, edges in vertices}
        level = {0: 0}
        queue = deque([0])
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                if v not in level:
                    level[v] = level[u] + 1
                    queue.append(v)
        for vid, parent in values.items():
            if vid == 0 or parent == -1:
                continue
            assert level[vid] == level[parent] + 1


class TestGraphSampling:
    def test_sample_is_subset_and_nonempty(self, driver, dfs):
        vertices = list(btc_graph(100, seed=3))
        job = graph_sampling.build_job(num_walkers=10, walk_length=8, seed=1)
        outcome, values = run(driver, dfs, graph_sampling, job, vertices, "sample")
        visited = {vid for vid, flag in values.items() if flag}
        assert 0 < len(visited) < 100

    def test_walk_terminates(self, driver, dfs):
        vertices = list(chain_graph(20))
        job = graph_sampling.build_job(num_walkers=3, walk_length=5, seed=2)
        outcome, _values = run(driver, dfs, graph_sampling, job, vertices, "sample2")
        assert outcome.supersteps <= 7


class TestPathMerging:
    def test_single_chain_merges_fully(self, driver, dfs):
        vertices = list(chain_graph(9))
        outcome, values = run(
            driver, dfs, graph_cleaning, graph_cleaning.build_job(), vertices, "merge1"
        )
        assert len(values) == 1
        assert list(values.values()) == [9]

    def test_total_length_preserved(self, driver, dfs):
        vertices = list(de_bruijn_path_graph(5, 6, seed=2))
        total = len(vertices)
        outcome, values = run(
            driver, dfs, graph_cleaning, graph_cleaning.build_job(), vertices, "merge2"
        )
        assert sum(values.values()) == total
        assert len(values) < total

    def test_branching_vertex_blocks_merge(self, driver, dfs):
        # 0 -> 1 and 2 -> 1: vertex 1 has two predecessors, so only the
        # tail merge below it may happen; 1 itself must survive.
        vertices = [
            (0, None, [(1, 1.0)]),
            (2, None, [(1, 1.0)]),
            (1, None, [(3, 1.0)]),
            (3, None, []),
        ]
        outcome, values = run(
            driver, dfs, graph_cleaning, graph_cleaning.build_job(), vertices, "merge3"
        )
        assert sum(values.values()) == 4
        assert 0 in values and 2 in values  # branch sources never merge away
