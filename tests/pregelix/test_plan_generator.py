"""Structural tests of the physical plans the generator emits."""

import pytest

from repro.algorithms import pagerank, sssp
from repro.graphs.generators import chain_graph
from repro.graphs.io import parse_adjacency_line, write_graph_to_dfs
from repro.hyracks.connectors import (
    MToNPartitioningConnector,
    MToNPartitioningMergingConnector,
)
from repro.hyracks.operators.groupby import (
    HashSortGroupByOperator,
    PreclusteredGroupByOperator,
    SortGroupByOperator,
)
from repro.hyracks.operators.join import (
    IndexFullOuterJoinOperator,
    IndexLeftOuterJoinOperator,
    MergeChooseOperator,
)
from repro.pregelix import ConnectorPolicy, GroupByStrategy, JoinStrategy
from repro.pregelix.physical import PartitionMap, PlanGenerator
from repro.pregelix.types import GlobalState


@pytest.fixture
def partition_map():
    return PartitionMap(["node0", "node1", "node2"])


def generator_for(job, dfs, partition_map):
    return PlanGenerator(job, dfs, "test-run", partition_map)


def op_types(spec):
    return [type(op).__name__ for op in spec.operators]


class TestPartitionMap:
    def test_partition_count(self, partition_map):
        assert partition_map.num_partitions == 3

    def test_partition_of_is_stable(self, partition_map):
        assert partition_map.partition_of(17) == partition_map.partition_of(17)
        assert 0 <= partition_map.partition_of(12345) < 3

    def test_over_nodes_multiplier(self):
        pm = PartitionMap.over_nodes(["a", "b"], partitions_per_node=2)
        assert pm.num_partitions == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PartitionMap([])


class TestSuperstepPlanShapes:
    def test_full_outer_join_plan(self, dfs, partition_map):
        job = pagerank.build_job(join_strategy=JoinStrategy.FULL_OUTER)
        spec = generator_for(job, dfs, partition_map).superstep_plan(GlobalState())
        names = op_types(spec)
        assert "IndexFullOuterJoinOperator" in names
        assert "IndexLeftOuterJoinOperator" not in names
        assert "MergeChooseOperator" not in names

    def test_left_outer_join_plan(self, dfs, partition_map):
        job = sssp.build_job(join_strategy=JoinStrategy.LEFT_OUTER)
        spec = generator_for(job, dfs, partition_map).superstep_plan(GlobalState())
        names = op_types(spec)
        assert "IndexLeftOuterJoinOperator" in names
        assert "MergeChooseOperator" in names
        assert "IndexScanOperator" in names  # the Vid scan
        assert "IndexBulkLoadOperator" in names  # Vid rebuild

    @pytest.mark.parametrize("strategy,expected", [
        (GroupByStrategy.SORT, "SortGroupByOperator"),
        (GroupByStrategy.HASHSORT, "HashSortGroupByOperator"),
    ])
    def test_unmerged_connector_regroups_at_receiver(self, dfs, partition_map, strategy, expected):
        job = pagerank.build_job(
            groupby_strategy=strategy, connector_policy=ConnectorPolicy.UNMERGED
        )
        spec = generator_for(job, dfs, partition_map).superstep_plan(GlobalState())
        names = op_types(spec)
        assert names.count(expected) == 2  # sender and receiver sides
        assert "PreclusteredGroupByOperator" not in names
        connector_types = [type(e.connector).__name__ for e in spec.edges]
        assert "MToNPartitioningConnector" in connector_types
        assert "MToNPartitioningMergingConnector" not in connector_types

    @pytest.mark.parametrize("strategy,expected", [
        (GroupByStrategy.SORT, "SortGroupByOperator"),
        (GroupByStrategy.HASHSORT, "HashSortGroupByOperator"),
    ])
    def test_merged_connector_preclusters_at_receiver(self, dfs, partition_map, strategy, expected):
        job = pagerank.build_job(
            groupby_strategy=strategy, connector_policy=ConnectorPolicy.MERGED
        )
        spec = generator_for(job, dfs, partition_map).superstep_plan(GlobalState())
        names = op_types(spec)
        assert names.count(expected) == 1  # sender side only
        assert "PreclusteredGroupByOperator" in names
        connector_types = [type(e.connector).__name__ for e in spec.edges]
        assert "MToNPartitioningMergingConnector" in connector_types

    def test_sticky_constraints_match_partition_map(self, dfs, partition_map):
        job = pagerank.build_job()
        spec = generator_for(job, dfs, partition_map).superstep_plan(GlobalState())
        pinned = [
            op
            for op in spec.operators
            if op.partition_constraint is not None
            and hasattr(op.partition_constraint, "locations")
        ]
        assert pinned, "superstep operators must be pinned"
        for op in pinned:
            assert op.partition_constraint.locations == partition_map.locations

    def test_global_gs_single_partition(self, dfs, partition_map):
        from repro.hyracks.scheduler import CountConstraint

        job = pagerank.build_job()
        spec = generator_for(job, dfs, partition_map).superstep_plan(GlobalState())
        gs_ops = [op for op in spec.operators if type(op).__name__ == "GlobalGSOperator"]
        assert len(gs_ops) == 1
        assert isinstance(gs_ops[0].partition_constraint, CountConstraint)
        assert gs_ops[0].partition_constraint.count == 1


class TestLoadingPlan:
    def test_loading_plan_structure(self, dfs, partition_map):
        write_graph_to_dfs(dfs, "/in/g", chain_graph(10), num_files=3)
        job = pagerank.build_job()
        spec = generator_for(job, dfs, partition_map).loading_plan(
            "/in/g", parse_adjacency_line
        )
        names = op_types(spec)
        assert "HDFSScanOperator" in names
        assert "ExternalSortOperator" in names
        assert "IndexBulkLoadOperator" in names
        assert "_InitGSOperator" in names

    def test_loj_loading_builds_vid_index(self, dfs, partition_map):
        write_graph_to_dfs(dfs, "/in/g", chain_graph(10), num_files=3)
        job = sssp.build_job()
        spec = generator_for(job, dfs, partition_map).loading_plan(
            "/in/g", parse_adjacency_line
        )
        bulk_loads = [
            op for op in spec.operators if type(op).__name__ == "IndexBulkLoadOperator"
        ]
        assert len(bulk_loads) == 2  # vertex + vid

    def test_missing_input_raises(self, dfs, partition_map):
        job = pagerank.build_job()
        with pytest.raises(FileNotFoundError):
            generator_for(job, dfs, partition_map).loading_plan(
                "/nope", parse_adjacency_line
            )

    def test_scan_gets_locality_choices(self, dfs, partition_map):
        from repro.hyracks.scheduler import ChoiceLocationConstraint

        write_graph_to_dfs(dfs, "/in/g", chain_graph(10), num_files=3)
        job = pagerank.build_job()
        spec = generator_for(job, dfs, partition_map).loading_plan(
            "/in/g", parse_adjacency_line
        )
        scan = next(op for op in spec.operators if type(op).__name__ == "HDFSScanOperator")
        assert isinstance(scan.partition_constraint, ChoiceLocationConstraint)


class TestTopologicalValidity:
    @pytest.mark.parametrize("join_strategy", list(JoinStrategy))
    def test_superstep_plans_are_acyclic(self, dfs, partition_map, join_strategy):
        job = pagerank.build_job(join_strategy=join_strategy)
        spec = generator_for(job, dfs, partition_map).superstep_plan(GlobalState())
        order = spec.topological_order()
        assert len(order) == len(spec.operators)
