"""Statistics collector unit tests: registry mirroring and reporting."""

import pytest

from repro.common.accounting import Counters, IOCounters
from repro.hyracks.engine import HyracksCluster, JobResult
from repro.pregelix.stats import StatisticsCollector, SuperstepStats
from repro.telemetry import MetricsRegistry


def fake_result(
    superstep,
    elapsed=0.5,
    messages=100,
    vertices=40,
    combined=25,
    join_tuples=60,
    index_probes=0,
    net_bytes=2048,
    read_bytes=512,
    write_bytes=1024,
    operator_seconds=None,
):
    network = IOCounters()
    network.record_network(net_bytes, messages=3)
    disk = IOCounters()
    disk.record_read(read_bytes)
    disk.record_write(write_bytes)
    counters = Counters()
    counters.add("vertices_processed", vertices)
    counters.add("messages_sent", messages)
    counters.add("combined_messages", combined)
    counters.add("join_tuples", join_tuples)
    counters.add("index_probes", index_probes)
    return JobResult(
        name="ss-%d" % superstep,
        collected={},
        counters=counters,
        network_io=network,
        disk_io=disk,
        elapsed=elapsed,
        operator_seconds=operator_seconds or {"Join": elapsed * 0.6, "GroupBy": elapsed * 0.4},
        cache_misses=7,
        cache_writebacks=2,
    )


class TestRecordSuperstep:
    def test_record_fields(self):
        stats = StatisticsCollector()
        record = stats.record_superstep(1, fake_result(1))
        assert isinstance(record, SuperstepStats)
        assert record.superstep == 1
        assert record.messages_sent == 100
        assert record.network_bytes == 2048
        assert record.disk_write_bytes == 1024
        assert record.join_tuples == 60
        assert record.cache_misses == 7
        assert stats.supersteps == [record]

    def test_registry_mirroring(self):
        registry = MetricsRegistry()
        stats = StatisticsCollector(registry=registry)
        stats.record_superstep(1, fake_result(1, messages=10))
        stats.record_superstep(2, fake_result(2, messages=30))
        assert registry.value("pregelix.messages_sent") == 40
        assert registry.value("pregelix.network_bytes") == 4096
        assert registry.value("pregelix.join_tuples") == 120
        hist = registry.get("pregelix.superstep_seconds")
        assert hist.count == 2

    def test_operator_seconds_in_registry(self):
        registry = MetricsRegistry()
        stats = StatisticsCollector(registry=registry)
        stats.record_superstep(1, fake_result(1, operator_seconds={"Join": 0.25}))
        stats.record_superstep(2, fake_result(2, operator_seconds={"Join": 0.5}))
        assert registry.value(
            "pregelix.operator_seconds", operator="Join"
        ) == pytest.approx(0.75)
        assert stats.total_operator_seconds == {"Join": pytest.approx(0.75)}


class TestSummary:
    def test_summary_matches_list_derived_properties_exactly(self):
        stats = StatisticsCollector()
        # Deliberately awkward floats: arrival-order accumulation in the
        # histogram must reproduce sum(list) bit-for-bit.
        for step, elapsed in enumerate((0.1, 0.2, 0.30000000004, 1e-9), start=1):
            stats.record_superstep(step, fake_result(step, elapsed=elapsed))
        summary = stats.summary()
        assert summary["supersteps"] == stats.num_supersteps == 4
        assert summary["total_elapsed"] == stats.total_elapsed
        assert summary["avg_iteration_seconds"] == stats.avg_iteration_seconds
        assert summary["messages_sent"] == stats.total_messages_sent
        assert summary["network_bytes"] == stats.total_network_bytes
        assert summary["spill_bytes"] == stats.total_spill_bytes

    def test_empty_collector(self):
        stats = StatisticsCollector()
        summary = stats.summary()
        assert summary["supersteps"] == 0
        assert summary["total_elapsed"] == 0
        assert stats.avg_iteration_seconds == 0.0


class TestRecordCluster:
    def test_cluster_snapshot_and_gauges(self, tmp_path):
        registry = MetricsRegistry()
        stats = StatisticsCollector(registry=registry)
        with HyracksCluster(num_nodes=2, root_dir=str(tmp_path / "c")) as cluster:
            stats.record_cluster(cluster)
        assert stats.live_machines == ["node0", "node1"]
        assert registry.value("pregelix.live_machines") == 2
        assert "node0" in stats.buffer_cache
        assert registry.get("pregelix.buffer_cache.hits", node="node0") is not None


class TestReport:
    def collect(self, stats):
        lines = []
        stats.report(out=lines.append)
        return lines

    def test_table_shape_preserved(self):
        stats = StatisticsCollector()
        stats.record_superstep(1, fake_result(1))
        lines = self.collect(stats)
        assert "superstep" in lines[0] and "cache misses" in lines[0]
        assert lines[1].split()[0] == "1"

    def test_access_method_and_operator_lines_appended(self):
        stats = StatisticsCollector()
        stats.record_superstep(1, fake_result(1, join_tuples=60, index_probes=5))
        stats.record_superstep(2, fake_result(2, join_tuples=40, index_probes=7))
        lines = self.collect(stats)
        assert "join tuples: 100, index probes: 12" in lines
        operator_line = [l for l in lines if l.startswith("operator seconds:")]
        assert len(operator_line) == 1
        # Sorted by descending total: Join (0.6/superstep) before GroupBy.
        assert operator_line[0].index("Join=") < operator_line[0].index("GroupBy=")
