"""Tests for named global aggregators."""

import pytest

from repro.common import serde
from repro.graphs.generators import chain_graph
from repro.graphs.io import write_graph_to_dfs
from repro.pregelix import PregelixJob, Vertex
from repro.pregelix.aggregators import AggregatorSet, NamedValuesSerde
from repro.pregelix.api import GlobalAggregator


class SumAgg(GlobalAggregator):
    def init(self):
        return 0.0

    def accumulate(self, state, contribution):
        return state + contribution

    def merge(self, left, right):
        return left + right

    def value_serde(self):
        return serde.FLOAT64


class MaxAgg(GlobalAggregator):
    def init(self):
        return float("-inf")

    def accumulate(self, state, contribution):
        return max(state, contribution)

    def merge(self, left, right):
        return max(left, right)

    def value_serde(self):
        return serde.FLOAT64


class TestAggregatorSet:
    def test_empty(self):
        aggregators = AggregatorSet(None)
        assert not aggregators
        assert aggregators.finish(None) is None
        assert aggregators.value_serde() is serde.NULL

    def test_single_anonymous(self):
        aggregators = AggregatorSet(SumAgg())
        states = aggregators.accumulate_all(
            aggregators.init_states(), [(None, 1.0), (None, 2.0)]
        )
        assert aggregators.finish(states) == 3.0
        assert not aggregators.is_named

    def test_named_pair(self):
        aggregators = AggregatorSet({"sum": SumAgg(), "max": MaxAgg()})
        states = aggregators.accumulate_all(
            aggregators.init_states(),
            [("sum", 1.0), ("max", 5.0), ("sum", 2.0), ("max", 3.0)],
        )
        assert aggregators.finish(states) == {"sum": 3.0, "max": 5.0}

    def test_merge_partials(self):
        aggregators = AggregatorSet({"sum": SumAgg()})
        a = aggregators.accumulate_all(aggregators.init_states(), [("sum", 1.0)])
        b = aggregators.accumulate_all(aggregators.init_states(), [("sum", 2.0)])
        merged = aggregators.merge(a, b)
        assert aggregators.finish(merged) == {"sum": 3.0}

    def test_merge_with_none_side(self):
        aggregators = AggregatorSet({"sum": SumAgg()})
        a = aggregators.accumulate_all(aggregators.init_states(), [("sum", 1.0)])
        assert aggregators.merge(None, a) is a
        assert aggregators.merge(a, None) is a

    def test_unknown_name_raises(self):
        aggregators = AggregatorSet({"sum": SumAgg()})
        with pytest.raises(KeyError):
            aggregators.accumulate(aggregators.init_states(), "nope", 1.0)

    def test_none_name_in_dict_rejected(self):
        with pytest.raises(ValueError):
            AggregatorSet({None: SumAgg()})

    def test_named_values_serde_roundtrip(self):
        codec = NamedValuesSerde({"a": serde.FLOAT64, "b": serde.INT64})
        value = {"a": 1.5, "b": 7}
        assert codec.loads(codec.dumps(value)) == value


class MinMaxDegreeVertex(Vertex):
    """Contributes its degree to two named aggregators."""

    def compute(self, messages):
        if self.superstep == 1:
            self.value = float(len(self.edges))
            self.aggregate(float(len(self.edges)), name="max-degree")
            self.aggregate(float(len(self.edges)), name="total-degree")
            self.send_message(self.vertex_id, 0.0)  # stay alive one round
        elif self.superstep == 2:
            list(messages)
            # Record what the previous superstep aggregated globally.
            self.value = self.get_global_aggregate("max-degree")
        self.vote_to_halt()


class TestEndToEnd:
    def test_named_aggregators_through_a_job(self, driver, dfs):
        write_graph_to_dfs(dfs, "/in/g", chain_graph(10), num_files=2)
        job = PregelixJob(
            "named-agg",
            MinMaxDegreeVertex,
            aggregator={"max-degree": MaxAgg(), "total-degree": SumAgg()},
        )
        outcome = driver.run(job, "/in/g", output_path="/out/g")
        # Final GS carries both named values from the last superstep with
        # contributions (superstep 1); superstep 2 contributes nothing.
        values = {
            int(l.split()[0]): float(l.split()[1])
            for l in driver.read_output("/out/g")
        }
        # Every vertex observed the global max degree (1.0 for a chain).
        assert all(v == 1.0 for v in values.values())

    def test_gs_roundtrips_named_values(self, driver, dfs):
        write_graph_to_dfs(dfs, "/in/h", chain_graph(6), num_files=2)
        job = PregelixJob(
            "named-agg-2",
            MinMaxDegreeVertex,
            aggregator={"max-degree": MaxAgg(), "total-degree": SumAgg()},
        )
        outcome = driver.run(job, "/in/h")
        assert isinstance(outcome.gs.aggregate, dict)
        assert set(outcome.gs.aggregate) == {"max-degree", "total-degree"}

    def test_single_aggregator_still_scalar(self, driver, dfs):
        class CountVertex(Vertex):
            def compute(self, messages):
                if self.superstep == 1:
                    self.value = 0.0
                    self.aggregate(1.0)
                self.vote_to_halt()

        write_graph_to_dfs(dfs, "/in/s", chain_graph(5), num_files=2)
        job = PregelixJob("scalar-agg", CountVertex, aggregator=SumAgg())
        outcome = driver.run(job, "/in/s")
        assert outcome.gs.aggregate == 5.0
