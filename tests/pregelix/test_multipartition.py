"""Multiple partitions per node (the paper's partitions-per-core policy).

The Pregelix scheduler "assigns as many partitions to a selected machine
as the number of its cores" (Section 5.7); the simulated cluster models
cores with ``partitions_per_node``. Everything — sticky placement,
message routing, checkpointing — must hold when each node owns several
vertex partitions.
"""

import pytest

from repro.algorithms import pagerank, sssp
from repro.graphs.generators import btc_graph, webmap_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver


@pytest.fixture
def multicore_cluster(tmp_path):
    with HyracksCluster(
        num_nodes=2, partitions_per_node=3, root_dir=str(tmp_path / "mc")
    ) as cluster:
        yield cluster


@pytest.fixture
def multicore_driver(multicore_cluster):
    dfs = MiniDFS(datanodes=multicore_cluster.node_ids())
    return PregelixDriver(multicore_cluster, dfs)


def reference_run(tmp_path_factory, job_factory, vertices):
    root = tmp_path_factory.mktemp("ref")
    with HyracksCluster(num_nodes=2, root_dir=str(root)) as cluster:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(dfs, "/in", iter(vertices), num_files=2)
        driver = PregelixDriver(cluster, dfs)
        driver.run(job_factory(), "/in", output_path="/out")
        return sorted(driver.read_output("/out"))


def values_of(lines):
    return {int(l.split()[0]): float(l.split()[1]) for l in lines}


def assert_values_close(got, expected):
    got_values = values_of(got)
    expected_values = values_of(expected)
    assert got_values.keys() == expected_values.keys()
    for vid, value in expected_values.items():
        # Message-sum order differs across partition counts; only the
        # last float ulps may move.
        assert got_values[vid] == pytest.approx(value, rel=1e-12)


class TestMultiplePartitionsPerNode:
    def test_six_partitions_on_two_nodes(self, multicore_cluster):
        assert multicore_cluster.num_partitions == 6

    def test_pagerank_matches_single_partition_run(
        self, multicore_driver, tmp_path_factory
    ):
        vertices = list(webmap_graph(200, seed=8))
        write_graph_to_dfs(multicore_driver.dfs, "/in", iter(vertices), num_files=3)
        multicore_driver.run(
            pagerank.build_job(iterations=5), "/in", output_path="/out"
        )
        got = sorted(multicore_driver.read_output("/out"))
        expected = reference_run(
            tmp_path_factory, lambda: pagerank.build_job(iterations=5), vertices
        )
        assert_values_close(got, expected)

    def test_sssp_with_loj_plan(self, multicore_driver, tmp_path_factory):
        vertices = list(btc_graph(150, seed=4))
        write_graph_to_dfs(multicore_driver.dfs, "/in2", iter(vertices), num_files=3)
        multicore_driver.run(
            sssp.build_job(source_id=0), "/in2", output_path="/out2"
        )
        got = sorted(multicore_driver.read_output("/out2"))
        expected = reference_run(
            tmp_path_factory, lambda: sssp.build_job(source_id=0), vertices
        )
        assert got == expected

    def test_recovery_with_multiple_partitions(self, multicore_cluster, multicore_driver, tmp_path_factory):
        vertices = list(btc_graph(120, seed=6))
        write_graph_to_dfs(multicore_driver.dfs, "/in3", iter(vertices), num_files=2)
        expected = reference_run(
            tmp_path_factory,
            lambda: pagerank.build_job(iterations=6),
            vertices,
        )
        multicore_cluster.nodes["node1"].inject_failure(after_tasks=160)
        job = pagerank.build_job(iterations=6, checkpoint_interval=2)
        outcome = multicore_driver.run(job, "/in3", output_path="/out3")
        assert outcome.recoveries >= 1
        # All six partitions now live on the surviving node.
        assert_values_close(sorted(multicore_driver.read_output("/out3")), expected)
