"""Lifecycle tests: cleanup, pipeline outcomes, keep_state."""

import pytest

from repro.algorithms import connected_components as cc
from repro.algorithms import pagerank, sssp
from repro.graphs.generators import btc_graph, chain_graph
from repro.graphs.io import write_graph_to_dfs
from repro.pregelix.pipelining import run_pipeline


class TestCleanup:
    def test_cleanup_drops_indexes_and_files(self, cluster, dfs, driver):
        write_graph_to_dfs(dfs, "/in/g", chain_graph(20), num_files=3)
        outcome = driver.run(sssp.build_job(source_id=0), "/in/g", keep_state=True)
        generator = outcome.generator
        registries = [
            node.services.get("indexes", {}) for node in cluster.nodes.values()
        ]
        assert any(registries)  # indexes exist while state is kept
        assert dfs.list_files("/pregelix/%s" % outcome.run_id)
        driver.cleanup(generator)
        for node in cluster.nodes.values():
            registry = node.services.get("indexes", {})
            assert not any(
                key[0].startswith("vertex:") or key[0].startswith("vid:")
                for key in registry
            )
            assert not node.services.get("pregelix", {}).get(outcome.run_id)
        assert not dfs.list_files("/pregelix/%s" % outcome.run_id)

    def test_default_run_cleans_up(self, cluster, dfs, driver):
        write_graph_to_dfs(dfs, "/in/h", chain_graph(10), num_files=2)
        outcome = driver.run(sssp.build_job(source_id=0), "/in/h")
        assert not hasattr(outcome, "generator")
        for node in cluster.nodes.values():
            assert not node.services.get("pregelix", {})

    def test_repeated_runs_do_not_leak_dfs_state(self, dfs, driver):
        write_graph_to_dfs(dfs, "/in/r", chain_graph(10), num_files=2)
        before = len(dfs.list_files("/pregelix"))
        for _ in range(3):
            driver.run(sssp.build_job(source_id=0), "/in/r")
        assert len(dfs.list_files("/pregelix")) == before


class TestPipelineOutcome:
    def test_total_seconds_and_final_gs(self, driver, dfs):
        write_graph_to_dfs(dfs, "/in/p", btc_graph(80, seed=3), num_files=2)
        outcome = run_pipeline(
            driver,
            [cc.build_job(), cc.build_job()],
            "/in/p",
            parse_line=cc.parse_line,
            format_record=cc.format_record,
        )
        assert outcome.total_seconds > 0
        assert outcome.final_gs.halt
        assert outcome.final_gs.num_vertices == 80

    def test_pipeline_with_loj_jobs(self, driver, dfs):
        """Reactivation must rebuild Vid between left-outer-join jobs."""
        write_graph_to_dfs(dfs, "/in/l", btc_graph(80, seed=9), num_files=2)
        first = sssp.build_job(source_id=0)
        second = sssp.build_job(source_id=5)
        outcome = run_pipeline(
            driver, [first, second], "/in/l", output_path="/out/l"
        )
        # The second job ran from the other source over the same loaded
        # relation; its distances replace the first job's.
        values = {
            int(l.split()[0]): float(l.split()[1])
            for l in driver.read_output("/out/l")
        }
        assert values[5] == 0.0
        assert len(outcome.outcomes) == 2
