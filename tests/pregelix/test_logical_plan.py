"""The logical plan (Figures 3-5) is realized by all 16 physical plans."""

import itertools

import pytest

from repro.algorithms import pagerank
from repro.pregelix import ConnectorPolicy, GroupByStrategy, JoinStrategy, VertexStorage
from repro.pregelix.physical import PartitionMap, PlanGenerator
from repro.pregelix.plan import (
    FLOWS,
    RELATIONS,
    UDFS,
    expected_operator_types,
    verify_realization,
)
from repro.pregelix.types import GlobalState


class TestLogicalModel:
    def test_table1_schema(self):
        assert RELATIONS["Vertex"] == ("vid", "halt", "value", "edges")
        assert RELATIONS["Msg"] == ("vid", "payload")
        assert RELATIONS["GS"] == ("halt", "aggregate", "superstep")

    def test_table2_udfs(self):
        assert set(UDFS) == {"compute", "combine", "aggregate", "resolve"}

    def test_all_twelve_flows_described(self):
        assert set(FLOWS) == {"D%d" % i for i in range(1, 13)}
        assert all(flow.figure in ("3", "4", "5", "8") for flow in FLOWS.values())


@pytest.mark.parametrize(
    "join_strategy,groupby_strategy,connector_policy,storage",
    list(
        itertools.product(
            JoinStrategy, GroupByStrategy, ConnectorPolicy, VertexStorage
        )
    ),
)
def test_every_physical_plan_realizes_the_logical_plan(
    dfs, join_strategy, groupby_strategy, connector_policy, storage
):
    job = pagerank.build_job(
        join_strategy=join_strategy,
        groupby_strategy=groupby_strategy,
        connector_policy=connector_policy,
        vertex_storage=storage,
    )
    generator = PlanGenerator(
        job, dfs, "logical-check", PartitionMap(["node0", "node1"])
    )
    spec = generator.superstep_plan(GlobalState())
    realization = verify_realization(spec, job)
    # The message-delivery flow must realize the *selected* join.
    if join_strategy == JoinStrategy.FULL_OUTER:
        assert "IndexFullOuterJoinOperator" in realization["D1"]
        assert "D12" not in realization
    else:
        assert "IndexLeftOuterJoinOperator" in realization["D1"]
        assert "D12" in realization


def test_missing_flow_detected(dfs):
    """A plan without the GS machinery must fail verification."""
    from repro.hyracks.job import JobSpec
    from repro.hyracks.operators.func import MapOperator

    job = pagerank.build_job()
    broken = JobSpec("broken")
    broken.add(MapOperator(lambda t: t))
    with pytest.raises(AssertionError):
        verify_realization(broken, job)


def test_expected_types_follow_hints():
    merged = pagerank.build_job(
        groupby_strategy=GroupByStrategy.HASHSORT,
        connector_policy=ConnectorPolicy.MERGED,
    )
    assert expected_operator_types(merged)["D7"][0] == "PreclusteredGroupByOperator"
    unmerged = pagerank.build_job(groupby_strategy=GroupByStrategy.HASHSORT)
    assert expected_operator_types(unmerged)["D7"][0] == "HashSortGroupByOperator"
