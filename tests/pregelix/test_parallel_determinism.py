"""Satellite determinism test: parallel runs are bit-identical.

The engine's contract (DESIGN.md §13) is that thread-pool execution is
an implementation detail: for a fixed ``(budget, group-by, connector)``
class, the dumped output of every algorithm must be byte-for-byte the
same at any worker count. This runs PageRank, SSSP, and connected
components across four worker counts (1–4) on the chaos harness's
standard graph and compares the sorted dump lines exactly — floats
included, so even a last-ulp divergence (e.g. from reordered message
combination) fails the test.
"""

import pytest

from repro.chaos.reference import algorithm_case
from repro.graphs.generators import btc_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix.runtime import PregelixDriver

NUM_NODES = 3
WORKER_COUNTS = (1, 2, 3, 4)
VERTICES = 80
GRAPH_SEED = 3


def run_algorithm(case, parallelism, tmp_path):
    cluster = HyracksCluster(
        num_nodes=NUM_NODES,
        parallelism=parallelism,
        root_dir=str(tmp_path / ("%s-p%d" % (case.name, parallelism))),
    )
    try:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(
            dfs,
            "/in/g",
            iter(btc_graph(VERTICES, seed=GRAPH_SEED)),
            num_files=NUM_NODES,
        )
        driver = PregelixDriver(cluster, dfs)
        outcome = driver.run(
            case.build_job(),
            "/in/g",
            output_path="/out/r",
            parse_line=case.parse_line,
            format_record=case.format_record,
        )
        return tuple(sorted(driver.read_output("/out/r"))), outcome.supersteps
    finally:
        cluster.close()


@pytest.mark.parametrize("algorithm", ["pagerank", "sssp", "cc"])
def test_parallel_output_bit_identical_across_worker_counts(algorithm, tmp_path):
    case = algorithm_case(algorithm)
    reference_lines, reference_supersteps = run_algorithm(case, 1, tmp_path)
    assert reference_lines  # the sequential run actually produced output
    for parallelism in WORKER_COUNTS[1:]:
        lines, supersteps = run_algorithm(case, parallelism, tmp_path)
        assert supersteps == reference_supersteps, (
            "parallel-%d took a different superstep count" % parallelism
        )
        assert lines == reference_lines, (
            "parallel-%d diverged from the sequential run" % parallelism
        )


def test_parallel_matches_reference_values(tmp_path):
    """Spot check: the parallel answer is also *correct*, not just stable."""
    case = algorithm_case("cc")
    lines, _supersteps = run_algorithm(case, 4, tmp_path)
    parsed = {}
    for line in lines:
        vid, value, _rest = case.parse_line(line)
        parsed[vid] = value
    expected = case.reference(list(btc_graph(VERTICES, seed=GRAPH_SEED)))
    assert parsed == expected
