"""Tests for the statistics report and failure-kind handling."""

import pytest

from repro.algorithms import pagerank, sssp
from repro.common.errors import WorkerFailure
from repro.graphs.generators import btc_graph, chain_graph
from repro.graphs.io import write_graph_to_dfs
from repro.pregelix.failure import FailureManager


class TestStatsReport:
    def test_report_prints_superstep_rows(self, driver, dfs):
        write_graph_to_dfs(dfs, "/in/g", chain_graph(10), num_files=2)
        outcome = driver.run(sssp.build_job(source_id=0), "/in/g")
        lines = []
        outcome.stats.report(out=lines.append)
        assert "superstep" in lines[0]
        assert len(lines) >= outcome.supersteps + 1
        assert any("live machines" in line for line in lines)

    def test_report_includes_optimizer_trace(self, driver, dfs):
        write_graph_to_dfs(dfs, "/in/o", chain_graph(20), num_files=2)
        job = sssp.build_job(source_id=0, auto_optimize=True)
        outcome = driver.run(job, "/in/o")
        lines = []
        outcome.stats.report(out=lines.append)
        assert any(line.startswith("plan ss") for line in lines)


class TestFailureKinds:
    def test_io_failure_is_recoverable(self, cluster, dfs, driver):
        write_graph_to_dfs(dfs, "/in/g", btc_graph(120, seed=5), num_files=3)
        cluster.nodes["node1"].inject_failure(after_tasks=40, kind="io")
        job = pagerank.build_job(iterations=6, checkpoint_interval=2)
        outcome = driver.run(job, "/in/g")
        assert outcome.recoveries >= 1
        assert "node1" not in cluster.alive_node_ids()

    def test_unknown_kind_is_forwarded(self, cluster, dfs, driver):
        write_graph_to_dfs(dfs, "/in/h", btc_graph(120, seed=5), num_files=3)
        cluster.nodes["node0"].inject_failure(after_tasks=40, kind="cosmic-rays")
        from repro.common.errors import JobFailure

        job = pagerank.build_job(iterations=6, checkpoint_interval=2)
        with pytest.raises(JobFailure):
            driver.run(job, "/in/h")

    def test_failure_manager_classification(self, cluster):
        from repro.common.errors import JobFailure

        manager = FailureManager(cluster)
        for kind, recoverable in (
            ("interruption", True),
            ("io", True),
            ("application", False),
        ):
            failure = JobFailure("boom", cause=WorkerFailure("node0", kind=kind))
            assert manager.is_recoverable(failure) is recoverable

    def test_non_worker_cause_not_recoverable(self, cluster):
        from repro.common.errors import JobFailure

        manager = FailureManager(cluster)
        assert not manager.is_recoverable(JobFailure("boom", cause=ValueError()))
        assert not manager.is_recoverable(ValueError())

    def test_blacklist_excluded_from_healthy(self, cluster):
        from repro.common.errors import JobFailure

        manager = FailureManager(cluster)
        failure = JobFailure("x", cause=WorkerFailure("node2"))
        manager.record(failure)
        assert "node2" in manager.blacklist
        assert "node2" not in manager.healthy_nodes()


class TestUnattributedFailures:
    """record() must tolerate failures whose cause has no node_id."""

    def test_record_without_node_id_returns_none(self, cluster):
        from repro.common.errors import JobFailure

        manager = FailureManager(cluster)
        assert manager.record(JobFailure("boom", cause=ValueError("app bug"))) is None
        assert manager.blacklist == set()
        assert sorted(manager.healthy_nodes()) == sorted(cluster.alive_node_ids())

    def test_record_without_cause_returns_none(self, cluster):
        from repro.common.errors import JobFailure

        manager = FailureManager(cluster)
        assert manager.record(JobFailure("no cause at all")) is None
        assert manager.record(ValueError("not even a JobFailure")) is None
        assert manager.blacklist == set()

    def test_unattributed_failure_emits_telemetry_event(self, cluster):
        from repro.common.errors import JobFailure

        manager = FailureManager(cluster)
        manager.record(JobFailure("boom", cause=ValueError("app bug")))
        events = cluster.telemetry.events.snapshot(name="failure.unattributed")
        assert len(events) == 1
        assert "boom" in events[0].args["error"]

    def test_attributed_failure_still_blacklists(self, cluster):
        from repro.common.errors import JobFailure

        manager = FailureManager(cluster)
        failure = JobFailure("x", cause=WorkerFailure("node1", kind="io"))
        assert manager.record(failure) == "node1"
        assert "node1" in manager.blacklist
        assert not cluster.telemetry.events.snapshot(name="failure.unattributed")
