"""Fixtures for Pregelix tests: a small cluster, DFS, and driver."""

import pytest

from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver


@pytest.fixture
def cluster(tmp_path):
    with HyracksCluster(num_nodes=3, root_dir=str(tmp_path / "cluster")) as c:
        yield c


@pytest.fixture
def dfs(cluster):
    return MiniDFS(datanodes=cluster.node_ids())


@pytest.fixture
def driver(cluster, dfs):
    return PregelixDriver(cluster, dfs)
