"""Unit tests for the durability substrate: retry, heartbeats, classes."""

import pytest

from repro.common.errors import JobFailure, TransientIOError, WorkerFailure
from repro.hdfs.retry import RetryPolicy, failure_cause, is_transient
from repro.hyracks.engine import HyracksCluster
from repro.hyracks.heartbeat import HeartbeatMonitor
from repro.pregelix.failure import FATAL, RECOVERABLE, TRANSIENT, FailureManager
from repro.telemetry import Telemetry


@pytest.fixture
def cluster(tmp_path):
    with HyracksCluster(num_nodes=3, root_dir=str(tmp_path / "c")) as c:
        yield c


class TestClassification:
    def test_failure_cause_unwraps_job_failure(self):
        worker = WorkerFailure("node1", kind="io")
        assert failure_cause(JobFailure("boom", cause=worker)) is worker
        assert failure_cause(worker) is worker
        assert failure_cause(ValueError("app bug")) is None
        assert failure_cause(JobFailure("no cause")) is None

    def test_is_transient(self):
        assert is_transient(TransientIOError("node0", site="dfs.write"))
        assert is_transient(
            JobFailure("x", cause=TransientIOError("node0", site="dfs.write"))
        )
        assert not is_transient(WorkerFailure("node0", kind="io"))
        assert not is_transient(ValueError("nope"))

    def test_manager_three_way_classify(self, cluster):
        manager = FailureManager(cluster)
        transient = JobFailure("t", cause=TransientIOError("node0"))
        machine = JobFailure("m", cause=WorkerFailure("node1", kind="interruption"))
        disk = JobFailure("d", cause=WorkerFailure("node1", kind="io"))
        app = JobFailure("a", cause=WorkerFailure("node1", kind="application"))
        assert manager.classify(transient) == TRANSIENT
        assert manager.classify(machine) == RECOVERABLE
        assert manager.classify(disk) == RECOVERABLE
        assert manager.classify(app) == FATAL
        assert manager.is_recoverable(transient)
        assert manager.is_recoverable(machine)
        assert not manager.is_recoverable(app)

    def test_exhausted_transient_recovers_without_blacklist(self, cluster):
        manager = FailureManager(cluster, telemetry=cluster.telemetry)
        failure = JobFailure(
            "flaky", cause=TransientIOError("node2", site="dfs.write")
        )
        assert manager.record(failure) is None
        assert manager.blacklist == set()
        assert "node2" in cluster.alive_node_ids()  # machine kept
        events = cluster.telemetry.events.snapshot(name="failure.transient_exhausted")
        assert len(events) == 1
        assert events[0].args["site"] == "dfs.write"

    def test_suspect_blacklists_and_kills_once(self, cluster):
        manager = FailureManager(cluster, telemetry=cluster.telemetry)
        manager.suspect("node1", reason="heartbeat")
        manager.suspect("node1", reason="heartbeat")  # idempotent
        assert manager.blacklist == {"node1"}
        assert "node1" not in cluster.alive_node_ids()
        events = cluster.telemetry.events.snapshot(name="failure.blacklist")
        assert len(events) == 1
        assert events[0].args["kind"] == "heartbeat"

    def test_healthy_nodes_sorted(self, cluster):
        manager = FailureManager(cluster)
        manager.blacklist.add("node1")
        assert manager.healthy_nodes() == ["node0", "node2"]
        assert manager.healthy_nodes() == sorted(manager.healthy_nodes())


class TestRetryPolicy:
    def test_no_retry_on_success(self):
        policy = RetryPolicy(telemetry=Telemetry())
        calls = []
        assert policy.call(lambda: calls.append(1) or "ok") == "ok"
        assert policy.retries_made == 0 and policy.attempts_made == 1

    def test_retries_transient_until_success(self):
        telemetry = Telemetry()
        policy = RetryPolicy(max_attempts=4, telemetry=telemetry)
        state = {"left": 2}

        def flaky():
            if state["left"]:
                state["left"] -= 1
                raise TransientIOError("node0", site="dfs.write")
            return "landed"

        before = telemetry.sim_clock.seconds
        assert policy.call(flaky, describe="dfs.write /f") == "landed"
        assert policy.retries_made == 2
        events = telemetry.events.snapshot(name="retry.attempt")
        assert [e.args["attempt"] for e in events] == [1, 2]
        assert all(e.args["what"] == "dfs.write /f" for e in events)
        assert telemetry.sim_clock.seconds > before  # backoff is simulated

    def test_non_transient_not_retried(self):
        policy = RetryPolicy(telemetry=Telemetry())
        state = {"calls": 0}

        def broken():
            state["calls"] += 1
            raise WorkerFailure("node0", kind="io")

        with pytest.raises(WorkerFailure):
            policy.call(broken)
        assert state["calls"] == 1

    def test_exhaustion_reraises(self):
        policy = RetryPolicy(max_attempts=3, telemetry=Telemetry())

        def always():
            raise TransientIOError("node0", site="dfs.write")

        with pytest.raises(TransientIOError):
            policy.call(always)
        assert policy.attempts_made == 3
        assert policy.retries_made == 2

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_seconds=0.1, multiplier=2.0, max_seconds=0.3, jitter=0.0
        )
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.3)  # capped
        assert policy.backoff_seconds(9) == pytest.approx(0.3)

    def test_backoff_deterministic_per_seed(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        c = RetryPolicy(seed=43)
        seq_a = [a.backoff_seconds(n) for n in range(1, 5)]
        seq_b = [b.backoff_seconds(n) for n in range(1, 5)]
        seq_c = [c.backoff_seconds(n) for n in range(1, 5)]
        assert seq_a == seq_b
        assert seq_a != seq_c

    def test_custom_classifier(self):
        policy = RetryPolicy(max_attempts=2, telemetry=Telemetry())
        state = {"calls": 0}

        def flaky_value_error():
            state["calls"] += 1
            if state["calls"] == 1:
                raise ValueError("retry me")
            return "ok"

        result = policy.call(
            flaky_value_error, classify=lambda e: isinstance(e, ValueError)
        )
        assert result == "ok" and state["calls"] == 2


class TestHeartbeatMonitor:
    def test_alive_cluster_beats_quietly(self, cluster):
        monitor = HeartbeatMonitor(cluster)
        assert monitor.observe() == []
        assert monitor.dead == set()
        assert set(monitor.last_beat) == set(cluster.nodes)

    def test_dead_node_declared_after_threshold(self, cluster):
        monitor = HeartbeatMonitor(cluster, miss_threshold=2)
        monitor.observe()
        cluster.kill_node("node1")
        assert monitor.observe() == []  # first miss: not declared yet
        assert cluster.telemetry.events.snapshot(name="heartbeat.missed")
        assert monitor.observe() == ["node1"]  # second miss: declared
        assert monitor.dead == {"node1"}
        dead_events = cluster.telemetry.events.snapshot(name="heartbeat.dead")
        assert [e.args["node"] for e in dead_events] == ["node1"]

    def test_declared_node_not_redeclared(self, cluster):
        monitor = HeartbeatMonitor(cluster)
        cluster.kill_node("node2")
        assert monitor.observe() == ["node2"]
        assert monitor.observe() == []  # no duplicate declarations

    def test_revived_node_welcomed_back(self, cluster):
        monitor = HeartbeatMonitor(cluster)
        cluster.kill_node("node0")
        assert monitor.observe() == ["node0"]
        cluster.nodes["node0"].alive = True  # simulated restart
        assert monitor.observe() == []
        assert monitor.dead == set()
        assert monitor.missed["node0"] == 0

    def test_threshold_validation(self, cluster):
        with pytest.raises(ValueError):
            HeartbeatMonitor(cluster, miss_threshold=0)

    def test_driver_blacklists_heartbeat_deaths(self, cluster):
        """End to end: a between-superstep power loss is caught by the
        heartbeat sweep, blacklisted, and recovered from checkpoint."""
        from repro.algorithms import pagerank
        from repro.graphs.generators import chain_graph
        from repro.graphs.io import write_graph_to_dfs
        from repro.hdfs import MiniDFS
        from repro.pregelix import PregelixDriver

        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(dfs, "/in/g", chain_graph(12), num_files=3)
        driver = PregelixDriver(cluster, dfs)
        job = pagerank.build_job(iterations=6, checkpoint_interval=2)
        cluster.nodes["node1"].inject_failure(after_tasks=40)
        outcome = driver.run(job, "/in/g", output_path="/out/r")
        assert outcome.recoveries >= 1
        assert cluster.telemetry.events.snapshot(name="heartbeat.dead")
