"""Serde roundtrips for the Pregel relational schema (Table 1)."""

from hypothesis import given, strategies as st

from repro.common import serde
from repro.pregelix.types import (
    GlobalState,
    VertexRecord,
    decode_global_state,
    decode_vertex,
    encode_global_state,
    encode_vertex,
    global_state_serde,
    vertex_value_serde,
)

CODEC = vertex_value_serde(serde.FLOAT64, serde.FLOAT64)


class TestVertexRecord:
    def test_roundtrip(self):
        record = VertexRecord(vid=3, halt=True, value=2.5, edges=[(4, 1.0), (5, 0.5)])
        data = encode_vertex(CODEC, record)
        clone = decode_vertex(CODEC, 3, data)
        assert clone == record

    def test_null_value(self):
        record = VertexRecord(vid=1)
        clone = decode_vertex(CODEC, 1, encode_vertex(CODEC, record))
        assert clone.value is None
        assert clone.edges == []
        assert not clone.halt

    def test_copy_is_deep_for_edges(self):
        record = VertexRecord(vid=1, edges=[(2, 1.0)])
        clone = record.copy()
        clone.edges.append((3, 1.0))
        assert len(record.edges) == 1

    @given(
        vid=st.integers(min_value=0, max_value=1 << 40),
        halt=st.booleans(),
        value=st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=True)),
        edges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 40),
                st.floats(allow_nan=False, allow_infinity=False),
            ),
            max_size=20,
        ),
    )
    def test_roundtrip_property(self, vid, halt, value, edges):
        record = VertexRecord(vid=vid, halt=halt, value=value, edges=edges)
        assert decode_vertex(CODEC, vid, encode_vertex(CODEC, record)) == record


class TestGlobalState:
    def test_roundtrip_with_aggregate(self):
        codec = global_state_serde(serde.FLOAT64)
        gs = GlobalState(halt=False, aggregate=1.25, superstep=7, num_vertices=5, num_edges=9)
        assert decode_global_state(codec, encode_global_state(codec, gs)) == gs

    def test_roundtrip_null_aggregate(self):
        codec = global_state_serde(serde.NULL)
        gs = GlobalState()
        assert decode_global_state(codec, encode_global_state(codec, gs)) == gs

    def test_advanced_increments_superstep(self):
        gs = GlobalState(superstep=3, num_vertices=10, num_edges=20)
        advanced = gs.advanced(halt=True, aggregate=0.5, num_vertices=11, num_edges=19)
        assert advanced.superstep == 4
        assert advanced.halt
        assert advanced.aggregate == 0.5
        assert advanced.num_vertices == 11
        assert advanced.num_edges == 19
        # The original is untouched (GS tuples are per-superstep rows).
        assert gs.superstep == 3
