"""Tests for edge-list input loading (SNAP-style files)."""

import pytest

from repro.algorithms import pagerank, sssp
from repro.graphs.io import parse_edge_line
from repro.pregelix import PregelixJob, Vertex


class TestParseEdgeLine:
    def test_with_weight(self):
        assert parse_edge_line("3 7 2.5") == (3, None, [(7, 2.5)])

    def test_default_weight(self):
        assert parse_edge_line("3 7") == (3, None, [(7, 1.0)])

    def test_malformed(self):
        with pytest.raises(ValueError):
            parse_edge_line("42")


class TestEdgeListLoading:
    def write_edges(self, dfs, path, edges):
        lines = ["%d %d %s" % (s, d, w) for s, d, w in edges]
        # Split across two part files to exercise the shuffle+merge.
        dfs.write_text_lines(path + "/part-0", lines[0::2])
        dfs.write_text_lines(path + "/part-1", lines[1::2])

    def test_edges_grouped_per_vertex(self, driver, dfs):
        edges = [(0, 1, 1.0), (0, 2, 2.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 5.0)]
        self.write_edges(dfs, "/in/edges", edges)
        outcome = driver.run(
            sssp.build_job(source_id=0),
            "/in/edges",
            output_path="/out/d",
            parse_line=parse_edge_line,
        )
        values = {
            int(l.split()[0]): float(l.split()[1])
            for l in driver.read_output("/out/d")
        }
        # Vertex 0 has three out-edges after merging; 3 is reached via
        # 0->1->2->3 (cost 3) rather than the direct 5.0 edge.
        assert values[3] == pytest.approx(3.0)
        assert values[2] == pytest.approx(2.0)

    def test_vertex_count_after_merge(self, driver, dfs):
        edges = [(0, 1, 1.0), (1, 0, 1.0), (0, 1, 1.0)]  # parallel edge kept
        self.write_edges(dfs, "/in/multi", edges)
        outcome = driver.run(
            sssp.build_job(source_id=0), "/in/multi", parse_line=parse_edge_line
        )
        # Two loaded vertices (0 and 1): both appear as sources.
        assert outcome.gs.num_vertices == 2
        assert outcome.gs.num_edges == 3

    def test_sink_only_vertices_autocreated(self, driver, dfs):
        """A destination that never appears as a source is created on
        first message (the left-outer case of the logical join)."""
        self.write_edges(dfs, "/in/sink", [(0, 9, 1.0)])
        outcome = driver.run(
            sssp.build_job(source_id=0),
            "/in/sink",
            output_path="/out/sink",
            parse_line=parse_edge_line,
        )
        values = {
            int(l.split()[0]): float(l.split()[1])
            for l in driver.read_output("/out/sink")
        }
        assert values[9] == pytest.approx(1.0)
        assert outcome.gs.num_vertices == 2  # 1 loaded + 1 auto-created

    def test_adjacency_inputs_unaffected(self, driver, dfs):
        """Unique-vid adjacency inputs pass through the merge unchanged."""
        from repro.graphs.generators import chain_graph
        from repro.graphs.io import write_graph_to_dfs

        write_graph_to_dfs(dfs, "/in/adj", chain_graph(8), num_files=2)
        outcome = driver.run(pagerank.build_job(iterations=3), "/in/adj")
        assert outcome.gs.num_vertices == 8
        assert outcome.gs.num_edges == 7
