"""Seeded property suite: elastic rebalancing never changes the answer.

The determinism claim of DESIGN.md §15: for a fixed ``(budget,
group-by, connector)`` class, a run whose cluster scales up or down at
*any* superstep boundary produces output byte-for-byte identical to a
run on static membership. The partition count is fixed at load, so
rebalancing only re-derives the partition→node assignment — placement
must be invisible in every dumped byte.

Each (algorithm × group-by × connector) cell runs a static reference,
then seeded random membership schedules: a scale-up and a scale-down at
a randomly drawn in-run boundary per seed, plus one up-then-down
schedule. Floats are compared exactly; a last-ulp divergence (e.g. from
messages combined in a different order after the handoff) fails.
"""

import random

import pytest

from repro.chaos.reference import algorithm_case
from repro.graphs.generators import btc_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import ConnectorPolicy, GroupByStrategy, PregelixDriver

NUM_NODES = 3
#: Over-decomposition: more partitions than nodes, so a joining node
#: deterministically takes a share (otherwise a scale-up has nothing to
#: move and the assignment would depend on the run-id rotation).
VIRTUAL_PARTITIONS = 6
VERTICES = 60
GRAPH_SEED = 3
SEEDS = (0, 1)

COMBOS = [
    pytest.param(groupby, connector,
                 id="%s-%s" % (groupby.value, connector.value))
    for groupby in (GroupByStrategy.SORT, GroupByStrategy.HASHSORT)
    for connector in (ConnectorPolicy.MERGED, ConnectorPolicy.UNMERGED)
]


def run_case(algorithm, groupby, connector, root_dir, scale_at=None):
    case = algorithm_case(algorithm)
    cluster = HyracksCluster(
        num_nodes=NUM_NODES,
        root_dir=str(root_dir),
        virtual_partitions=VIRTUAL_PARTITIONS,
    )
    try:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(
            dfs,
            "/in/g",
            iter(btc_graph(VERTICES, seed=GRAPH_SEED)),
            num_files=NUM_NODES,
        )
        job = case.build_job()
        job.groupby_strategy = groupby
        job.connector_policy = connector
        driver = PregelixDriver(cluster, dfs)
        outcome = driver.run(
            job,
            "/in/g",
            output_path="/out/r",
            parse_line=case.parse_line,
            format_record=case.format_record,
            scale_at=dict(scale_at) if scale_at else None,
        )
        return tuple(sorted(driver.read_output("/out/r"))), outcome
    finally:
        cluster.close()


@pytest.mark.parametrize("groupby,connector", COMBOS)
@pytest.mark.parametrize("algorithm", ["pagerank", "sssp", "cc"])
def test_rebalanced_run_bit_identical_to_static(
    algorithm, groupby, connector, tmp_path
):
    reference, ref_outcome = run_case(
        algorithm, groupby, connector, tmp_path / "static"
    )
    assert reference
    # A mid-run boundary exists for every case on this graph.
    assert ref_outcome.supersteps >= 3
    for seed in SEEDS:
        rng = random.Random(
            "%s:%s:%s:%d" % (algorithm, groupby.value, connector.value, seed)
        )
        boundary = rng.randrange(2, ref_outcome.supersteps)
        for direction, target in (
            ("up", rng.choice((NUM_NODES + 1, NUM_NODES + 2))),
            ("down", rng.choice((1, NUM_NODES - 1))),
        ):
            label = "seed%d-%s" % (seed, direction)
            lines, outcome = run_case(
                algorithm, groupby, connector, tmp_path / label,
                scale_at={boundary: target},
            )
            assert outcome.stats.rebalances, (
                "%s: no handoff happened at superstep %d" % (label, boundary)
            )
            assert outcome.supersteps == ref_outcome.supersteps
            assert lines == reference, (
                "%s %s diverged scaling %s to %d nodes at superstep %d"
                % (algorithm, label, direction, target, boundary)
            )


def test_up_then_down_schedule_bit_identical(tmp_path):
    """Membership may move twice in one run; both handoffs stay invisible."""
    reference, ref_outcome = run_case(
        "pagerank", GroupByStrategy.SORT, ConnectorPolicy.MERGED,
        tmp_path / "static",
    )
    lines, outcome = run_case(
        "pagerank", GroupByStrategy.SORT, ConnectorPolicy.MERGED,
        tmp_path / "updown",
        scale_at={2: NUM_NODES + 2, 4: NUM_NODES - 1},
    )
    assert [step for step, _, _ in outcome.stats.rebalances] == [2, 4]
    assert lines == reference
