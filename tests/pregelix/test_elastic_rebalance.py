"""Elastic membership: join/drain/retire mechanics and the boundary handoff.

The contract under test (DESIGN.md §15): ``add_node``/``drain_node``/
``scale_to`` change *membership* immediately but change *placement* only
at the next superstep boundary, where the driver hands partitions off
through the checkpoint/restore path. Draining nodes stay alive — and
heartbeat-healthy — until every pinned run has handed off, then retire
with their storage wiped.
"""

import pytest

from repro.algorithms import pagerank
from repro.common.errors import SchedulingError
from repro.graphs.generators import btc_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.hyracks.heartbeat import HeartbeatMonitor
from repro.pregelix import PregelixDriver

VERTICES = 60
GRAPH_SEED = 3


class TestMembership:
    def test_add_node_is_schedulable_immediately(self, cluster):
        node_id = cluster.add_node()
        assert node_id == "node3"
        assert node_id in cluster.schedulable_node_ids()
        assert node_id in cluster.alive_node_ids()
        assert cluster.nodes[node_id].alive

    def test_node_ids_never_reused(self, cluster):
        first = cluster.add_node()
        cluster.drain_node(first)  # unpinned: retires immediately
        assert first not in cluster.nodes
        second = cluster.add_node()
        assert second != first

    def test_duplicate_node_id_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.add_node("node0")

    def test_unpinned_drain_retires_immediately(self, cluster):
        cluster.drain_node("node2")
        assert "node2" not in cluster.nodes
        assert "node2" in cluster.retired_nodes

    def test_drain_keeps_pinned_node_alive_until_handoff(self, cluster):
        cluster.register_placement("run1", ("node0", "node1", "node2"))
        cluster.drain_node("node2")
        # Healthy-until-handoff: still a member, still alive, but no
        # new placements may land on it.
        assert "node2" in cluster.nodes
        assert "node2" in cluster.alive_node_ids()
        assert "node2" in cluster.draining_node_ids()
        assert "node2" not in cluster.schedulable_node_ids()
        cluster.release_placement("run1")
        assert "node2" not in cluster.nodes
        assert "node2" in cluster.retired_nodes

    def test_inflight_job_blocks_retirement(self, cluster):
        cluster.nodes["node2"].inflight += 1
        cluster.drain_node("node2")
        assert "node2" in cluster.nodes
        cluster.nodes["node2"].inflight -= 1
        assert cluster.reap_draining_nodes() == ["node2"]

    def test_retirement_wipes_node_state(self, cluster):
        node = cluster.nodes["node2"]
        cluster.drain_node("node2")
        assert not node.alive
        assert not node.files._paged_files
        events = cluster.telemetry.events.snapshot(name="cluster.scale")
        assert [e.args["action"] for e in events] == ["drain", "retire"]

    def test_scale_to_adds_fresh_nodes(self, cluster):
        added, draining = cluster.scale_to(5)
        assert len(added) == 2 and draining == []
        assert len(cluster.schedulable_node_ids()) == 5

    def test_scale_to_drains_newest_first(self, cluster):
        cluster.add_node()  # node3
        added, draining = cluster.scale_to(2)
        assert added == []
        assert draining == ["node3", "node2"]
        assert cluster.schedulable_node_ids() == ["node0", "node1"]

    def test_scale_below_one_raises(self, cluster):
        with pytest.raises(ValueError):
            cluster.scale_to(0)

    def test_membership_epoch_tracks_changes(self, cluster):
        epoch = cluster.membership_epoch
        cluster.add_node()
        assert cluster.membership_epoch == epoch + 1
        cluster.drain_node("node0")  # drain + immediate retire
        assert cluster.membership_epoch == epoch + 3

    def test_placement_on_retired_node_raises(self, cluster):
        cluster.drain_node("node2")
        with pytest.raises(SchedulingError):
            cluster.register_placement("run1", ("node0", "node2"))

    def test_heartbeat_treats_draining_as_healthy(self, cluster):
        monitor = HeartbeatMonitor(cluster)
        cluster.register_placement("run1", ("node2",))
        cluster.drain_node("node2")
        for _ in range(4):
            assert monitor.observe() == []
        assert "node2" not in monitor.dead
        assert monitor.missed["node2"] == 0

    def test_virtual_partitions_pin_the_count(self, tmp_path):
        with HyracksCluster(
            num_nodes=2, root_dir=str(tmp_path / "vc"), virtual_partitions=6
        ) as cluster:
            assert cluster.num_partitions == 6
            cluster.add_node()
            assert cluster.num_partitions == 6

    def test_injector_mirrored_onto_joined_node(self, cluster):
        from repro.chaos import FaultInjector, FaultPlan

        injector = FaultInjector(FaultPlan()).attach(cluster)
        node_id = cluster.add_node()
        node = cluster.nodes[node_id]
        assert node.fault_injector is injector
        assert node.buffer_cache.fault_injector is injector


#: Over-decomposition for the driver tests: with more partitions than
#: nodes, a joining node deterministically takes a share of the data.
VIRTUAL_PARTITIONS = 6


def run_pagerank(cluster, scale_at=None, iterations=5):
    dfs = MiniDFS(datanodes=cluster.node_ids())
    write_graph_to_dfs(
        dfs, "/in/g", iter(btc_graph(VERTICES, seed=GRAPH_SEED)), num_files=3
    )
    driver = PregelixDriver(cluster, dfs)
    job = pagerank.build_job(iterations=iterations)
    outcome = driver.run(job, "/in/g", output_path="/out/r", scale_at=scale_at)
    return tuple(sorted(driver.read_output("/out/r"))), outcome


class TestDriverRebalance:
    def test_scale_up_rebalances_at_the_boundary(self, tmp_path):
        with HyracksCluster(
            num_nodes=3, root_dir=str(tmp_path / "static"),
            virtual_partitions=VIRTUAL_PARTITIONS
        ) as cluster:
            reference, _ = run_pagerank(cluster)
        with HyracksCluster(
            num_nodes=3, root_dir=str(tmp_path / "up"),
            virtual_partitions=VIRTUAL_PARTITIONS
        ) as cluster:
            lines, outcome = run_pagerank(cluster, scale_at={3: 4})
            assert lines == reference
            assert len(outcome.stats.rebalances) == 1
            superstep, seconds, moved = outcome.stats.rebalances[0]
            assert superstep == 3 and seconds > 0 and moved > 0
            assert sorted(cluster.nodes) == ["node0", "node1", "node2", "node3"]
            events = cluster.telemetry.events.snapshot(name="cluster.rebalance")
            assert [e.args["phase"] for e in events] == ["begin", "commit"]
            spans = [
                s for s in cluster.telemetry.tracer.spans
                if s.category == "rebalance"
            ]
            assert len(spans) == 1

    def test_scale_down_retires_the_drained_node(self, tmp_path):
        with HyracksCluster(
            num_nodes=3, root_dir=str(tmp_path / "static"),
            virtual_partitions=VIRTUAL_PARTITIONS
        ) as cluster:
            reference, _ = run_pagerank(cluster)
        with HyracksCluster(
            num_nodes=3, root_dir=str(tmp_path / "down"),
            virtual_partitions=VIRTUAL_PARTITIONS
        ) as cluster:
            lines, outcome = run_pagerank(cluster, scale_at={2: 2})
            assert lines == reference
            assert len(outcome.stats.rebalances) == 1
            # The drained node handed off and retired during the run.
            assert sorted(cluster.nodes) == ["node0", "node1"]
            assert cluster.retired_nodes == ["node2"]
            # No pinned pages leaked onto the survivors.
            for node in cluster.nodes.values():
                assert all(
                    page.pin_count == 0
                    for page in node.buffer_cache._pages.values()
                )

    def test_noop_scale_skips_the_handoff(self, tmp_path):
        with HyracksCluster(
            num_nodes=3, root_dir=str(tmp_path / "noop"),
            virtual_partitions=VIRTUAL_PARTITIONS
        ) as cluster:
            _lines, outcome = run_pagerank(cluster, scale_at={2: 3})
            assert outcome.stats.rebalances == []
            assert cluster.telemetry.events.snapshot(name="cluster.rebalance") == []
