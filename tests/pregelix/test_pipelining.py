"""Job pipelining tests (paper Section 5.6)."""

import pytest

from repro.algorithms import connected_components as cc
from repro.algorithms import graph_cleaning, pagerank, sssp
from repro.common.errors import ReproError
from repro.graphs.generators import btc_graph, de_bruijn_path_graph
from repro.graphs.io import write_graph_to_dfs
from repro.pregelix.pipelining import check_compatibility, run_pipeline


class TestCompatibility:
    def test_same_serde_types_compatible(self):
        check_compatibility([cc.build_job(), cc.build_job()])

    def test_different_value_serdes_rejected(self):
        with pytest.raises(ReproError):
            check_compatibility([cc.build_job(), pagerank.build_job()])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ReproError):
            check_compatibility([])


class TestPipelineExecution:
    def test_two_cc_rounds(self, driver, dfs):
        write_graph_to_dfs(dfs, "/in/g", btc_graph(100, seed=7), num_files=3)
        outcome = run_pipeline(
            driver,
            [cc.build_job(), cc.build_job()],
            "/in/g",
            output_path="/out/pipe",
            parse_line=cc.parse_line,
            format_record=cc.format_record,
        )
        assert len(outcome.outcomes) == 2
        # The second (idempotent) round converges quickly: every vertex
        # re-propagates once, then everything is stable.
        assert outcome.outcomes[1].supersteps <= outcome.outcomes[0].supersteps
        labels = {
            int(l.split()[0]): int(l.split()[1])
            for l in driver.read_output("/out/pipe")
        }
        assert len(labels) == 100

    def test_pipeline_matches_single_run(self, driver, dfs):
        """A pipeline of one job equals a plain run of that job."""
        write_graph_to_dfs(dfs, "/in/one", btc_graph(80, seed=8), num_files=3)
        plain_job = sssp.build_job(source_id=0)
        driver.run(plain_job, "/in/one", output_path="/out/plain")
        plain = sorted(driver.read_output("/out/plain"))
        outcome = run_pipeline(
            driver, [sssp.build_job(source_id=0)], "/in/one", output_path="/out/pipe1"
        )
        assert sorted(driver.read_output("/out/pipe1")) == plain

    def test_loads_once(self, driver, dfs, cluster):
        write_graph_to_dfs(dfs, "/in/lo", btc_graph(60, seed=9), num_files=3)
        before = cluster.jobs_executed
        outcome = run_pipeline(
            driver,
            [cc.build_job(), cc.build_job()],
            "/in/lo",
            parse_line=cc.parse_line,
            format_record=cc.format_record,
        )
        jobs = cluster.jobs_executed - before
        # 1 load + supersteps + 1 reactivation; a non-pipelined pair would
        # add another load and a dump/reload round trip.
        expected = 1 + sum(o.supersteps for o in outcome.outcomes) + 1
        assert jobs == expected

    def test_mutation_then_analysis_pipeline(self, driver, dfs):
        """Genomix-style: clean the graph, then analyze the result."""
        write_graph_to_dfs(
            dfs, "/in/genome", de_bruijn_path_graph(4, 6, seed=3), num_files=2
        )
        cleaning = graph_cleaning.build_job()
        components = cc.build_job(vertex_storage=cleaning.vertex_storage)
        outcome = run_pipeline(
            driver,
            [cleaning, components],
            "/in/genome",
            output_path="/out/genome",
            parse_line=graph_cleaning.parse_line,
            format_record=graph_cleaning.format_record,
        )
        lines = driver.read_output("/out/genome")
        # Paths merged, then labeled: far fewer vertices than the input.
        assert 0 < len(lines) < 28


class TestJobArrays:
    def test_compatible_segments_split(self):
        from repro.pregelix.pipelining import compatible_segments

        jobs = [cc.build_job(), cc.build_job(), pagerank.build_job(), sssp.build_job()]
        segments = compatible_segments(jobs)
        assert [len(s) for s in segments] == [2, 2]
        # pagerank and sssp share float value/edge serdes -> compatible.
        assert segments[1][0].name == "pagerank"

    def test_mixed_array_materializes_at_boundary(self, driver, dfs):
        from repro.pregelix.pipelining import run_job_array

        write_graph_to_dfs(dfs, "/in/arr", btc_graph(60, seed=12), num_files=2)
        jobs = [cc.build_job(), sssp.build_job(source_id=0)]
        outcomes = run_job_array(
            driver,
            jobs,
            "/in/arr",
            output_path="/out/arr",
            parsers={"connected-components": cc.parse_line},
            formatters={"connected-components": cc.format_record},
        )
        assert len(outcomes) == 2  # two segments: CC | SSSP
        # The final output is SSSP distances over the same topology.
        values = {
            int(l.split()[0]): float(l.split()[1])
            for l in driver.read_output("/out/arr")
        }
        assert values[0] == 0.0
        assert len(values) == 60
