"""Checkpoint / recovery tests (paper Section 5.5)."""

import pytest

from repro.algorithms import pagerank, sssp
from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.common.errors import CheckpointNotFound, JobFailure
from repro.graphs.generators import btc_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import (
    ConnectorPolicy,
    GroupByStrategy,
    JoinStrategy,
    PregelixDriver,
)
from repro.pregelix.checkpoint import Checkpointer, iter_pairs, pack_pairs
from repro.pregelix.physical import PartitionMap, PlanGenerator


class TestBlobFraming:
    def test_roundtrip(self):
        pairs = [(b"a", b"1"), (b"bb", b""), (b"", b"payload")]
        assert list(iter_pairs(pack_pairs(pairs))) == pairs

    def test_empty(self):
        assert list(iter_pairs(pack_pairs([]))) == []

    def test_large(self):
        pairs = [(b"%06d" % i, b"v" * (i % 50)) for i in range(2000)]
        assert list(iter_pairs(pack_pairs(pairs))) == pairs


@pytest.fixture
def env(tmp_path):
    cluster = HyracksCluster(num_nodes=3, root_dir=str(tmp_path / "c"))
    dfs = MiniDFS(datanodes=cluster.node_ids())
    write_graph_to_dfs(dfs, "/in/g", btc_graph(120, seed=5), num_files=3)
    driver = PregelixDriver(cluster, dfs)
    yield cluster, dfs, driver
    cluster.close()


def run_reference(tmp_path_factory, job_factory):
    root = tmp_path_factory.mktemp("ref")
    cluster = HyracksCluster(num_nodes=3, root_dir=str(root))
    dfs = MiniDFS(datanodes=cluster.node_ids())
    write_graph_to_dfs(dfs, "/in/g", btc_graph(120, seed=5), num_files=3)
    driver = PregelixDriver(cluster, dfs)
    driver.run(job_factory(), "/in/g", output_path="/out/ref")
    lines = sorted(driver.read_output("/out/ref"))
    cluster.close()
    return lines


class TestCheckpointing:
    def test_checkpoints_written_at_interval(self, env):
        cluster, dfs, driver = env
        job = pagerank.build_job(iterations=6, checkpoint_interval=2)
        outcome = driver.run(job, "/in/g", keep_state=True)
        generator = outcome.generator
        checkpointer = Checkpointer(generator)
        assert checkpointer.latest_checkpoint() == 4
        assert dfs.exists(checkpointer.manifest_path(2))
        assert dfs.exists(checkpointer.path(4, "vertex", 0))
        assert dfs.exists(checkpointer.path(4, "msg", 2))
        # Commit leaves no staging debris behind.
        assert not [
            p for p in dfs.list_files(checkpointer.root()) if "/_tmp." in p
        ]
        # Every committed checkpoint passes its own audit.
        assert checkpointer.verify(2) == []
        assert checkpointer.verify(4) == []
        driver.cleanup(generator)

    def test_no_checkpoint_without_interval(self, env):
        cluster, dfs, driver = env
        outcome = driver.run(pagerank.build_job(iterations=4), "/in/g", keep_state=True)
        checkpointer = Checkpointer(outcome.generator)
        assert checkpointer.latest_checkpoint() is None
        driver.cleanup(outcome.generator)

    def test_loj_checkpoint_includes_vid(self, env):
        cluster, dfs, driver = env
        job = sssp.build_job(source_id=0, checkpoint_interval=1)
        outcome = driver.run(job, "/in/g", keep_state=True)
        checkpointer = Checkpointer(outcome.generator)
        latest = checkpointer.latest_checkpoint()
        assert latest is not None
        assert dfs.exists(checkpointer.path(latest, "vid", 0))
        driver.cleanup(outcome.generator)


class TestRecovery:
    def test_results_identical_after_machine_loss(self, env, tmp_path_factory):
        cluster, dfs, driver = env
        expected = run_reference(
            tmp_path_factory, lambda: pagerank.build_job(iterations=8)
        )
        cluster.nodes["node1"].inject_failure(after_tasks=40)
        job = pagerank.build_job(iterations=8, checkpoint_interval=2)
        outcome = driver.run(job, "/in/g", output_path="/out/rec")
        assert outcome.recoveries >= 1
        assert "node1" not in cluster.alive_node_ids()
        assert sorted(driver.read_output("/out/rec")) == expected

    def test_loj_plan_recovers(self, env, tmp_path_factory):
        cluster, dfs, driver = env
        expected = run_reference(tmp_path_factory, lambda: sssp.build_job(source_id=0))
        cluster.nodes["node2"].inject_failure(after_tasks=30)
        job = sssp.build_job(source_id=0, checkpoint_interval=1)
        outcome = driver.run(job, "/in/g", output_path="/out/rec2")
        assert outcome.recoveries >= 1
        assert sorted(driver.read_output("/out/rec2")) == expected

    def test_failure_without_checkpoint_raises(self, env):
        cluster, dfs, driver = env
        cluster.nodes["node0"].inject_failure(after_tasks=25)
        job = pagerank.build_job(iterations=8)  # no checkpoint interval
        with pytest.raises(CheckpointNotFound):
            driver.run(job, "/in/g")

    def test_application_error_not_recovered(self, env):
        cluster, dfs, driver = env
        from repro.pregelix import PregelixJob, Vertex

        class Crash(Vertex):
            def compute(self, messages):
                raise ValueError("application bug")

        job = PregelixJob("crash", Crash, checkpoint_interval=1)
        with pytest.raises(ValueError):
            driver.run(job, "/in/g")

    def test_torn_checkpoint_not_selected(self, env):
        cluster, dfs, driver = env
        outcome = driver.run(
            pagerank.build_job(iterations=6, checkpoint_interval=2),
            "/in/g",
            keep_state=True,
        )
        checkpointer = Checkpointer(outcome.generator)
        # Simulate a torn checkpoint at superstep 6: files but no manifest.
        dfs.write(checkpointer.path(6, "vertex", 0), b"")
        assert 6 not in checkpointer.committed_supersteps()
        assert checkpointer.latest_checkpoint() == 4
        driver.cleanup(outcome.generator)

class TestKillRecoveryAcrossGroupBys:
    """A mid-superstep machine kill must recover under every group-by.

    The paper's four group-by strategies (sender group-by x connector
    policy) buffer in-flight messages differently; recovery must replay
    to the identical fault-free answer for all of them. The kill is
    driven by the chaos injector so it lands *inside* a superstep plan
    (at an operator-clone open), not between supersteps.
    """

    @pytest.mark.parametrize(
        "groupby,connector",
        [
            (GroupByStrategy.SORT, ConnectorPolicy.UNMERGED),
            (GroupByStrategy.SORT, ConnectorPolicy.MERGED),
            (GroupByStrategy.HASHSORT, ConnectorPolicy.UNMERGED),
            (GroupByStrategy.HASHSORT, ConnectorPolicy.MERGED),
        ],
    )
    def test_mid_superstep_kill_recovers(
        self, env, tmp_path_factory, groupby, connector
    ):
        cluster, dfs, driver = env
        expected = run_reference(
            tmp_path_factory,
            lambda: pagerank.build_job(
                iterations=6, groupby_strategy=groupby, connector_policy=connector
            ),
        )
        plan = FaultPlan(
            [
                FaultSpec(
                    site="operator.open",
                    action="kill",
                    node="node1",
                    at_hit=3,
                    min_superstep=3,
                )
            ]
        )
        injector = FaultInjector(plan).attach(cluster)
        job = pagerank.build_job(
            iterations=6,
            checkpoint_interval=1,
            groupby_strategy=groupby,
            connector_policy=connector,
        )
        outcome = driver.run(job, "/in/g", output_path="/out/kill")
        assert outcome.recoveries >= 1
        assert [f.action for f in injector.fired] == ["kill"]
        assert injector.fired[0].node == "node1"
        assert "node1" not in cluster.alive_node_ids()
        assert sorted(driver.read_output("/out/kill")) == expected
        injector.detach()


class TestRecoveryPartitionMap:
    def test_recovery_replaces_partition_map(self, env):
        cluster, dfs, driver = env
        cluster.nodes["node1"].inject_failure(after_tasks=40)
        job = pagerank.build_job(iterations=8, checkpoint_interval=2)
        outcome = driver.run(job, "/in/g", keep_state=True)
        locations = outcome.generator.partition_map.locations
        assert "node1" not in locations
        assert len(locations) == 3  # partition count is preserved
        driver.cleanup(outcome.generator)
