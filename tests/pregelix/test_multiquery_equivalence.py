"""Seeded equivalence harness for multi-query superstep sharing.

Every batched lane must produce a result document whose digest equals
the digest of a solo run of the same query — across random graphs,
random batch compositions (duplicate queries allowed), all four
group-by × connector plan classes, and parallel execution.
"""

import random

import pytest

from repro.algorithms import bfs_spanning_tree, reachability, sssp
from repro.graphs.generators import btc_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver
from repro.pregelix.api import ConnectorPolicy, GroupByStrategy
from repro.pregelix.multiquery import (
    LaneMapSerde,
    LanePairSerde,
    LaneVectorSerde,
    MultiQueryError,
    MultiQueryProgram,
)
from repro.common import serde
from repro.serve.api import result_document
from repro.serve.cache import result_digest

ALGORITHMS = {
    "sssp": (sssp, lambda rng, n: {"source_id": rng.randrange(n)}),
    "reachability": (
        reachability,
        lambda rng, n: {
            "sources": tuple(
                sorted(rng.sample(range(n), rng.randint(1, 3)))
            )
        },
    ),
    "bfs-tree": (bfs_spanning_tree, lambda rng, n: {"root": rng.randrange(n)}),
}

PLAN_CLASSES = [
    (gb, cp)
    for gb in (GroupByStrategy.SORT, GroupByStrategy.HASHSORT)
    for cp in (ConnectorPolicy.UNMERGED, ConnectorPolicy.MERGED)
]


def _driver(tmp_path, tag, parallelism=1):
    cluster = HyracksCluster(
        num_nodes=3,
        parallelism=parallelism,
        root_dir=str(tmp_path / ("cluster-%s" % tag)),
    )
    dfs = MiniDFS(datanodes=cluster.node_ids())
    return cluster, PregelixDriver(cluster, dfs)


def _load(driver, vertices):
    write_graph_to_dfs(driver.dfs, "/in", iter(vertices), num_files=3)


def _apply_plan(job, plan):
    if plan is not None:
        job.groupby_strategy, job.connector_policy = plan
    return job


def _solo_digest(tmp_path, vertices, module, name, params, plan=None,
                 parallelism=1, tag="solo"):
    cluster, driver = _driver(tmp_path, tag, parallelism)
    try:
        _load(driver, vertices)
        job = _apply_plan(module.build_job(**params), plan)
        outcome = driver.run(
            job, "/in", "/out",
            parse_line=getattr(module, "parse_line", None),
            format_record=getattr(module, "format_record", None),
        )
        doc = result_document(
            name, job, outcome, results=driver.read_output("/out")
        )
    finally:
        cluster.close()
    return result_digest(doc), doc["supersteps"]


def _batched_digests(tmp_path, vertices, module, name, param_sets, plan=None,
                     parallelism=1, tag="batch"):
    cluster, driver = _driver(tmp_path, tag, parallelism)
    try:
        _load(driver, vertices)
        template = _apply_plan(module.build_job(**param_sets[0]), plan)
        program = MultiQueryProgram(module, param_sets, template_job=template)
        outcome, lane_lines = program.run(driver, "/in", "/out")
        docs = [
            program.lane_document(lane, name, outcome, lane_lines[lane])
            for lane in range(len(param_sets))
        ]
    finally:
        cluster.close()
    return [(result_digest(doc), doc["supersteps"]) for doc in docs]


@pytest.mark.parametrize("plan", PLAN_CLASSES,
                         ids=lambda p: "%s-%s" % (p[0].value, p[1].value))
def test_every_plan_class_is_lane_equivalent(tmp_path, plan):
    """All 4 group-by × connector combos: batched digest == solo digest."""
    vertices = list(btc_graph(48, seed=21))
    param_sets = [{"source_id": s} for s in (0, 9, 9, 30, 47)]
    batched = _batched_digests(
        tmp_path, vertices, sssp, "sssp", param_sets, plan=plan
    )
    for lane, params in enumerate(param_sets):
        solo = _solo_digest(
            tmp_path, vertices, sssp, "sssp", params, plan=plan,
            tag="solo-%d" % lane,
        )
        assert batched[lane] == solo, (
            "lane %d (%r) diverged from solo under plan %r" % (lane, params, plan)
        )


@pytest.mark.parametrize("round_seed", [101, 202, 303])
def test_random_batches_match_solo(tmp_path, round_seed):
    """Random graph, algorithm, and batch (sizes 1-8, duplicates allowed)."""
    rng = random.Random(round_seed)
    num_vertices = rng.choice([36, 48, 60])
    vertices = list(btc_graph(num_vertices, seed=rng.randrange(1000)))
    name = rng.choice(sorted(ALGORITHMS))
    module, sample = ALGORITHMS[name]
    batch_size = rng.randint(1, 8)
    param_sets = [sample(rng, num_vertices) for _ in range(batch_size)]
    if batch_size >= 2 and rng.random() < 0.7:
        # force a duplicate: two identical queries are two lanes
        param_sets[-1] = dict(param_sets[0])
    batched = _batched_digests(
        tmp_path, vertices, module, name, param_sets
    )
    solo_cache = {}
    for lane, params in enumerate(param_sets):
        key = repr(sorted(params.items()))
        if key not in solo_cache:
            solo_cache[key] = _solo_digest(
                tmp_path, vertices, module, name, params,
                tag="solo-%d" % lane,
            )
        assert batched[lane] == solo_cache[key], (
            "seed %d: lane %d of %d (%s %r) diverged from solo"
            % (round_seed, lane, batch_size, name, params)
        )


def test_parallel_4_batches_match_sequential_solo(tmp_path):
    """A full 8-lane batch under parallelism=4 stays in the solo class."""
    vertices = list(btc_graph(48, seed=5))
    sources = (0, 7, 7, 13, 22, 31, 40, 47)
    param_sets = [{"source_id": s} for s in sources]
    batched = _batched_digests(
        tmp_path, vertices, sssp, "sssp", param_sets, parallelism=4
    )
    for lane, source in enumerate(sources):
        solo_seq = _solo_digest(
            tmp_path, vertices, sssp, "sssp", {"source_id": source},
            tag="seq-%d" % lane,
        )
        solo_par = _solo_digest(
            tmp_path, vertices, sssp, "sssp", {"source_id": source},
            parallelism=4, tag="par-%d" % lane,
        )
        assert solo_par == solo_seq, "solo parallel-4 broke determinism"
        assert batched[lane] == solo_seq, (
            "parallel-4 lane %d (source %d) diverged from solo" % (lane, source)
        )


def test_cancelled_lane_does_not_disturb_survivors(tmp_path):
    """Cancelling one lane mid-run leaves the other lanes bit-identical."""
    vertices = list(btc_graph(48, seed=13))
    sources = (0, 17, 33)
    cluster, driver = _driver(tmp_path, "cancel")
    try:
        _load(driver, vertices)
        program = MultiQueryProgram(
            sssp, [{"source_id": s} for s in sources]
        )

        def chain(superstep):
            if superstep == 2:
                program.control.cancel(1)

        outcome, lane_lines = program.run(
            driver, "/in", "/out", boundary_chain=chain
        )
        docs = [
            program.lane_document(lane, "sssp", outcome, lane_lines[lane])
            for lane in range(len(sources))
        ]
    finally:
        cluster.close()
    for lane in (0, 2):
        solo = _solo_digest(
            tmp_path, vertices, sssp, "sssp",
            {"source_id": sources[lane]}, tag="solo-%d" % lane,
        )
        assert (result_digest(docs[lane]), docs[lane]["supersteps"]) == solo
    # the cancelled lane froze: it ran at most up to the cancel boundary
    assert docs[1]["supersteps"] <= outcome.gs.superstep


def test_lane_serdes_round_trip():
    vector_serde = LaneVectorSerde(serde.FLOAT64)
    vector = [(False, None), (True, 2.5), (True, None), (False, 0.0)]
    encoded = vector_serde.dumps(vector)
    assert vector_serde.loads(encoded) == vector
    assert vector_serde.sizeof(vector) == len(encoded)

    pair_serde = LanePairSerde(serde.FLOAT64)
    encoded = pair_serde.dumps((7, 1.25))
    assert pair_serde.loads(encoded) == (7, 1.25)
    assert pair_serde.sizeof((7, 1.25)) == len(encoded) == 9

    map_serde = LaneMapSerde(serde.FLOAT64)
    bundle = {3: 0.5, 0: -1.0, 7: 9.75}
    encoded = map_serde.dumps(bundle)
    assert map_serde.loads(encoded) == bundle
    assert map_serde.sizeof(bundle) == len(encoded)
    # encoding is canonical regardless of dict insertion order
    assert map_serde.dumps({7: 9.75, 0: -1.0, 3: 0.5}) == encoded


def test_batch_construction_guards():
    with pytest.raises(MultiQueryError):
        MultiQueryProgram(sssp, [])
    with pytest.raises(MultiQueryError):
        MultiQueryProgram(sssp, [{"source_id": 0}] * 256)
    from repro.algorithms import pagerank

    job = pagerank.build_job()
    if job.aggregator is not None:
        with pytest.raises(MultiQueryError):
            MultiQueryProgram(pagerank, [{}], template_job=job)
