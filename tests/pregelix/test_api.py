"""Unit tests for the user-facing Pregel API."""

import pytest

from repro.common import serde
from repro.common.errors import GraphMutationConflict, ReproError
from repro.pregelix.api import (
    Combiner,
    ConnectorPolicy,
    DefaultListCombiner,
    Edge,
    GroupByStrategy,
    JoinStrategy,
    MaxCombiner,
    MinCombiner,
    PregelixJob,
    SumCombiner,
    Vertex,
    VertexResolver,
    VertexStorage,
)


class EchoVertex(Vertex):
    def compute(self, messages):
        self.vote_to_halt()


class TestVertexBinding:
    def make_bound(self):
        vertex = EchoVertex()
        vertex._bind(7, 1.5, [(8, 0.5), (9, 0.25)], 3, 42.0, 100, 500)
        return vertex

    def test_accessors(self):
        vertex = self.make_bound()
        assert vertex.vertex_id == 7
        assert vertex.value == 1.5
        assert vertex.superstep == 3
        assert vertex.global_aggregate == 42.0
        assert vertex.num_vertices == 100
        assert vertex.num_edges == 500
        assert vertex.edges == [Edge(8, 0.5), Edge(9, 0.25)]

    def test_value_setter(self):
        vertex = self.make_bound()
        vertex.value = 9.9
        assert vertex.value == 9.9

    def test_send_message(self):
        vertex = self.make_bound()
        vertex.send_message(8, 0.1)
        assert vertex._outbox == [(8, 0.1)]

    def test_send_message_to_all_edges(self):
        vertex = self.make_bound()
        vertex.send_message_to_all_edges(2.0)
        assert vertex._outbox == [(8, 2.0), (9, 2.0)]

    def test_vote_to_halt(self):
        vertex = self.make_bound()
        assert not vertex._halted
        vertex.vote_to_halt()
        assert vertex._halted

    def test_edge_mutators(self):
        vertex = self.make_bound()
        vertex.add_edge(10, 1.0)
        assert vertex.edges[-1] == Edge(10, 1.0)
        vertex.remove_edges_to(8)
        assert all(e.target != 8 for e in vertex.edges)
        vertex.set_edges([(1, 0.5)])
        assert vertex.edges == [Edge(1, 0.5)]

    def test_mutation_requests(self):
        vertex = self.make_bound()
        vertex.add_vertex(50, 1.0, edges=[(7, 1.0)])
        vertex.remove_vertex(51)
        assert vertex._mutations[0][0] == "insert"
        assert vertex._mutations[0][3] == [Edge(7, 1.0)]
        assert vertex._mutations[1] == ("delete", 51, None, None)

    def test_aggregate_contributions(self):
        vertex = self.make_bound()
        vertex.aggregate(3)
        vertex.aggregate(4, name="max-seen")
        assert vertex._agg_contribs == [(None, 3), ("max-seen", 4)]

    def test_named_global_aggregate_access(self):
        vertex = self.make_bound()
        vertex._global_aggregate = {"sum": 7, "max": 9}
        assert vertex.get_global_aggregate("sum") == 7
        assert vertex.get_global_aggregate("missing") is None
        scalar = self.make_bound()
        assert scalar.get_global_aggregate("anything") == 42.0

    def test_rebind_resets_transient_state(self):
        vertex = self.make_bound()
        vertex.send_message(8, 1.0)
        vertex.vote_to_halt()
        vertex._bind(1, None, [], 4, None, 10, 10)
        assert vertex._outbox == []
        assert not vertex._halted

    def test_compute_must_be_overridden(self):
        with pytest.raises(NotImplementedError):
            Vertex().compute(iter(()))


class TestCombiners:
    def roundtrip(self, combiner, payloads):
        state = combiner.init()
        for payload in payloads:
            state = combiner.accumulate(state, payload)
        return combiner.finish(state)

    def test_default_list_combiner(self):
        combiner = DefaultListCombiner()
        bundle = self.roundtrip(combiner, [3.0, 1.0, 2.0])
        assert bundle == [3.0, 1.0, 2.0]
        assert list(combiner.expand(bundle)) == [3.0, 1.0, 2.0]

    def test_default_list_merge(self):
        combiner = DefaultListCombiner()
        assert combiner.merge([1], [2, 3]) == [1, 2, 3]

    def test_default_bundle_serde(self):
        combiner = DefaultListCombiner()
        codec = combiner.bundle_serde(serde.FLOAT64)
        assert codec.loads(codec.dumps([1.0, 2.0])) == [1.0, 2.0]

    def test_min_combiner(self):
        combiner = MinCombiner()
        assert self.roundtrip(combiner, [3.0, 1.0, 2.0]) == 1.0
        assert combiner.merge(None, 5.0) == 5.0
        assert combiner.merge(2.0, None) == 2.0
        assert list(combiner.expand(1.0)) == [1.0]

    def test_max_combiner(self):
        combiner = MaxCombiner()
        assert self.roundtrip(combiner, [3.0, 9.0, 2.0]) == 9.0

    def test_sum_combiner(self):
        combiner = SumCombiner()
        assert self.roundtrip(combiner, [1.0, 2.0, 3.5]) == 6.5
        assert combiner.merge(1.0, 2.0) == 3.0

    def test_base_combiner_abstract(self):
        with pytest.raises(NotImplementedError):
            Combiner().init()


class TestResolver:
    def test_deletion_only(self):
        outcome = VertexResolver().resolve(1, [("delete", 1, None, None)], True)
        assert outcome == ("delete",)

    def test_insertion_wins_over_deletion(self):
        """The paper's partial order: deletions apply before insertions."""
        mutations = [("delete", 1, None, None), ("insert", 1, 5.0, [])]
        outcome = VertexResolver().resolve(1, mutations, True)
        assert outcome == ("insert", 5.0, [])

    def test_conflicting_insertions_raise(self):
        mutations = [("insert", 1, 5.0, []), ("insert", 1, 6.0, [])]
        with pytest.raises(GraphMutationConflict):
            VertexResolver().resolve(1, mutations, False)

    def test_custom_resolver_can_choose(self):
        class LastWins(VertexResolver):
            def choose_insertion(self, vid, insertions):
                return insertions[-1]

        mutations = [("insert", 1, 5.0, []), ("insert", 1, 6.0, [])]
        assert LastWins().resolve(1, mutations, False) == ("insert", 6.0, [])

    def test_empty_mutations(self):
        assert VertexResolver().resolve(1, [], True) is None


class TestPregelixJob:
    def test_defaults_match_paper_default_plan(self):
        job = PregelixJob("j", EchoVertex)
        assert job.join_strategy == JoinStrategy.FULL_OUTER
        assert job.groupby_strategy == GroupByStrategy.SORT
        assert job.connector_policy == ConnectorPolicy.UNMERGED
        assert job.vertex_storage == VertexStorage.BTREE

    def test_rejects_non_vertex_class(self):
        with pytest.raises(ReproError):
            PregelixJob("bad", dict)

    def test_plan_signature(self):
        job = PregelixJob("j", EchoVertex)
        assert job.plan_signature() == "full-outer-join/sort/m-to-n-partitioning/btree"

    def test_sixteen_distinct_plans(self):
        signatures = set()
        import itertools

        for js, gb, cp, vs in itertools.product(
            JoinStrategy, GroupByStrategy, ConnectorPolicy, VertexStorage
        ):
            job = PregelixJob(
                "j",
                EchoVertex,
                join_strategy=js,
                groupby_strategy=gb,
                connector_policy=cp,
                vertex_storage=vs,
            )
            signatures.add(job.plan_signature())
        assert len(signatures) == 16

    def test_gs_codec_roundtrip(self):
        from repro.pregelix.types import (
            GlobalState,
            decode_global_state,
            encode_global_state,
        )

        job = PregelixJob("j", EchoVertex)
        gs = GlobalState(halt=True, aggregate=None, superstep=5, num_vertices=10, num_edges=20)
        codec = job.gs_codec()
        assert decode_global_state(codec, encode_global_state(codec, gs)) == gs
