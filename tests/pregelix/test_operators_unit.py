"""Unit tests for the Pregelix-specific operators in isolation."""

import pytest

from repro.algorithms import pagerank
from repro.common import serde
from repro.common.serde import encode_key
from repro.hyracks.engine import HyracksCluster, JobContext, TaskContext
from repro.hyracks.operators.index_ops import get_index, register_index
from repro.hyracks.storage.btree import BTree
from repro.pregelix import PregelixJob, Vertex
from repro.pregelix.operators import (
    ComputeOperator,
    LocalGSOperator,
    MsgScanOperator,
    MsgWriteOperator,
    VertexMutationOperator,
    runtime_state,
)
from repro.pregelix.types import GlobalState, VertexRecord, encode_vertex


@pytest.fixture
def unit_cluster(tmp_path):
    with HyracksCluster(num_nodes=1, root_dir=str(tmp_path / "u")) as c:
        yield c


@pytest.fixture
def ctx(unit_cluster):
    return TaskContext(unit_cluster.nodes["node0"], JobContext("unit"), 0, 1)


def make_vertex_index(ctx, job, records, name="vertex:unit"):
    codec = job.vertex_codec()
    tree = BTree(ctx.buffer_cache)
    tree.bulk_load(
        (encode_key(record.vid), encode_vertex(codec, record))
        for record in sorted(records, key=lambda r: r.vid)
    )
    register_index(ctx, name, 0, tree)
    return tree


class TestMsgFileRoundtrip:
    def test_write_then_scan(self, ctx):
        job = pagerank.build_job()
        codec = job.bundle_codec()
        write = MsgWriteOperator("run1", 1, codec)
        data = [(encode_key(1), 0.5), (encode_key(2), 1.5)]
        write.run(ctx, 0, [data])
        scan = MsgScanOperator("run1", codec)
        assert scan.run(ctx, 0, [])[scan.OUT] == data

    def test_scan_missing_file_is_empty(self, ctx):
        job = pagerank.build_job()
        scan = MsgScanOperator("ghost-run", job.bundle_codec())
        assert scan.run(ctx, 0, [])[scan.OUT] == []

    def test_write_replaces_previous_superstep_file(self, ctx):
        job = pagerank.build_job()
        codec = job.bundle_codec()
        MsgWriteOperator("run2", 1, codec).run(ctx, 0, [[(encode_key(1), 1.0)]])
        first_path = runtime_state(ctx, "run2")["msg_files"][0]
        MsgWriteOperator("run2", 2, codec).run(ctx, 0, [[(encode_key(2), 2.0)]])
        second_path = runtime_state(ctx, "run2")["msg_files"][0]
        assert first_path != second_path
        import os

        assert not os.path.exists(first_path)
        scan = MsgScanOperator("run2", codec)
        assert scan.run(ctx, 0, [])[scan.OUT] == [(encode_key(2), 2.0)]

    def test_counters_track_combined_messages(self, ctx):
        job = pagerank.build_job()
        codec = job.bundle_codec()
        MsgWriteOperator("run3", 1, codec).run(
            ctx, 0, [[(encode_key(i), 1.0) for i in range(5)]]
        )
        assert ctx.job.counters.get("combined_messages") == 5


class CountingVertex(Vertex):
    def compute(self, messages):
        self.value = float(sum(messages))
        self.vote_to_halt()


class TestComputeOperator:
    def test_filter_prunes_halted_without_messages(self, ctx):
        job = PregelixJob("unit", CountingVertex)
        make_vertex_index(
            ctx,
            job,
            [
                VertexRecord(vid=1, halt=True, value=0.0),
                VertexRecord(vid=2, halt=False, value=0.0),
            ],
        )
        compute = ComputeOperator(job, "r", "vertex:unit", GlobalState(), emit_live=False)
        joined = [
            (encode_key(1), None, b"ignored"),  # halted + no message
            (encode_key(2), None, b"x"),
        ]
        # Provide real stored bytes for the active vertex.
        index = get_index(ctx, "vertex:unit", 0)
        joined = [
            (encode_key(1), None, index.lookup(encode_key(1))),
            (encode_key(2), None, index.lookup(encode_key(2))),
        ]
        out = compute.run(ctx, 0, [joined])
        assert ctx.job.counters.get("vertices_processed") == 1
        assert out[ComputeOperator.HALT] == [True]

    def test_live_port_only_when_enabled(self, ctx):
        class StayAlive(Vertex):
            def compute(self, messages):
                self.value = 0.0  # never votes to halt

        job = PregelixJob("unit2", StayAlive)
        index = make_vertex_index(
            ctx, job, [VertexRecord(vid=3)], name="vertex:unit2"
        )
        joined = [(encode_key(3), None, index.lookup(encode_key(3)))]
        live_on = ComputeOperator(job, "r", "vertex:unit2", GlobalState(), emit_live=True)
        out = live_on.run(ctx, 0, [joined])
        assert out[ComputeOperator.LIVE] == [(encode_key(3), b"")]
        live_off = ComputeOperator(job, "r", "vertex:unit2", GlobalState(), emit_live=False)
        out = live_off.run(ctx, 0, [joined])
        assert out[ComputeOperator.LIVE] == []


class TestMutationOperator:
    def test_insert_and_delete(self, ctx):
        job = PregelixJob("unit3", CountingVertex)
        index = make_vertex_index(
            ctx, job, [VertexRecord(vid=1), VertexRecord(vid=2)], name="vertex:unit3"
        )
        op = VertexMutationOperator(job, "vertex:unit3")
        out = op.run(
            ctx,
            0,
            [[("insert", 9, 5.0, []), ("delete", 1, None, None)]],
        )
        assert index.lookup(encode_key(9)) is not None
        assert index.lookup(encode_key(1)) is None
        (stats,) = out[VertexMutationOperator.STATS]
        assert stats == (0, 0, 1)  # +1 insert, -1 delete, 1 activation

    def test_empty_input_emits_zero_stats(self, ctx):
        job = PregelixJob("unit4", CountingVertex)
        op = VertexMutationOperator(job, "vertex:none")
        assert op.run(ctx, 0, [[]])[VertexMutationOperator.STATS] == [(0, 0, 0)]


class TestLocalGS:
    def test_halt_and_aggregate_partials(self, ctx):
        from repro.pregelix.api import GlobalAggregator

        class Sum(GlobalAggregator):
            def init(self):
                return 0

            def accumulate(self, state, c):
                return state + c

            def merge(self, a, b):
                return a + b

            def value_serde(self):
                return serde.INT64

        job = PregelixJob("unit5", CountingVertex, aggregator=Sum())
        op = LocalGSOperator(job)
        out = op.run(ctx, 0, [[True, False], [(None, 2), (None, 3)]])
        ((halt, state),) = out[op.OUT]
        assert halt is False
        assert state == {None: 5}

    def test_empty_partition_is_halted(self, ctx):
        job = PregelixJob("unit6", CountingVertex)
        op = LocalGSOperator(job)
        ((halt, state),) = op.run(ctx, 0, [[], []])[op.OUT]
        assert halt is True
        assert state is None
