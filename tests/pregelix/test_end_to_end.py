"""End-to-end Pregelix runs checked against independent references."""

import itertools
import math

import pytest

from repro.algorithms import connected_components as cc
from repro.algorithms import pagerank, sssp
from repro.common import serde
from repro.graphs.generators import btc_graph, chain_graph, star_graph, webmap_graph
from repro.graphs.io import write_graph_to_dfs
from repro.pregelix import (
    ConnectorPolicy,
    GroupByStrategy,
    JoinStrategy,
    PregelixJob,
    Vertex,
    VertexStorage,
)
from repro.pregelix.api import GlobalAggregator


def reference_sssp(vertices, source):
    """Dijkstra over the same (vid, value, edges) tuples."""
    import heapq

    graph = {vid: edges for vid, _value, edges in vertices}
    dist = {vid: math.inf for vid in graph}
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph.get(u, []):
            if v in dist and d + w < dist[v]:
                dist[v] = d + w
                heapq.heappush(heap, (d + w, v))
    return dist


def reference_components(vertices):
    """Union-find over undirected edges."""
    parent = {vid: vid for vid, _v, _e in vertices}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for vid, _value, edges in vertices:
        for dest, _w in edges:
            if dest in parent:
                ra, rb = find(vid), find(dest)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)
    return {vid: find(vid) for vid in parent}


def reference_pagerank(vertices, iterations, damping=0.85):
    graph = {vid: [d for d, _w in edges] for vid, _value, edges in vertices}
    n = len(graph)
    ranks = {vid: 1.0 / n for vid in graph}
    for _ in range(iterations - 1):
        incoming = {vid: 0.0 for vid in graph}
        for vid, targets in graph.items():
            if targets:
                share = ranks[vid] / len(targets)
                for t in targets:
                    if t in incoming:
                        incoming[t] += share
        ranks = {vid: (1 - damping) / n + damping * incoming[vid] for vid in graph}
    return ranks


class TestSSSP:
    def test_chain_distances(self, driver, dfs):
        vertices = list(chain_graph(12))
        write_graph_to_dfs(dfs, "/in/chain", iter(vertices), num_files=3)
        outcome = driver.run(sssp.build_job(source_id=0), "/in/chain", output_path="/out/c")
        got = _read_values(driver, "/out/c")
        assert got == {vid: float(vid) for vid in range(12)}

    def test_matches_dijkstra_on_random_graph(self, driver, dfs):
        vertices = list(btc_graph(150, seed=3))
        write_graph_to_dfs(dfs, "/in/rand", iter(vertices), num_files=3)
        outcome = driver.run(sssp.build_job(source_id=0), "/in/rand", output_path="/out/r")
        expected = reference_sssp(vertices, 0)
        got = _read_values(driver, "/out/r")
        for vid, dist in expected.items():
            if math.isinf(dist):
                assert math.isinf(got[vid])
            else:
                assert got[vid] == pytest.approx(dist)

    def test_unreachable_vertices_stay_infinite(self, driver, dfs):
        lines = [(0, None, [(1, 1.0)]), (1, None, []), (5, None, [(6, 2.0)]), (6, None, [])]
        write_graph_to_dfs(dfs, "/in/two", iter(lines), num_files=2)
        driver.run(sssp.build_job(source_id=0), "/in/two", output_path="/out/two")
        got = _read_values(driver, "/out/two")
        assert got[1] == 1.0
        assert math.isinf(got[5]) and math.isinf(got[6])


class TestPageRank:
    def test_ranks_sum_to_one(self, driver, dfs):
        write_graph_to_dfs(dfs, "/in/web", webmap_graph(150, seed=1), num_files=3)
        driver.run(pagerank.build_job(iterations=5), "/in/web", output_path="/out/pr")
        got = _read_values(driver, "/out/pr")
        assert sum(got.values()) == pytest.approx(1.0, abs=1e-6)

    def test_matches_reference_implementation(self, driver, dfs):
        vertices = list(webmap_graph(120, seed=4))
        write_graph_to_dfs(dfs, "/in/web2", iter(vertices), num_files=3)
        driver.run(pagerank.build_job(iterations=6), "/in/web2", output_path="/out/pr2")
        expected = reference_pagerank(vertices, 6)
        got = _read_values(driver, "/out/pr2")
        for vid, rank in expected.items():
            assert got[vid] == pytest.approx(rank, abs=1e-9)

    def test_star_graph_hub_dominates(self, driver, dfs):
        write_graph_to_dfs(dfs, "/in/star", star_graph(20), num_files=2)
        driver.run(pagerank.build_job(iterations=8), "/in/star", output_path="/out/star")
        got = _read_values(driver, "/out/star")
        assert got[0] == max(got.values())


class TestConnectedComponents:
    def test_matches_union_find(self, driver, dfs):
        vertices = list(btc_graph(200, seed=9))
        write_graph_to_dfs(dfs, "/in/btc", iter(vertices), num_files=3)
        driver.run(
            cc.build_job(),
            "/in/btc",
            output_path="/out/cc",
            parse_line=cc.parse_line,
            format_record=cc.format_record,
        )
        expected = reference_components(vertices)
        got = {int(l.split()[0]): int(l.split()[1]) for l in driver.read_output("/out/cc")}
        assert got == expected


class TestPlanEquivalence:
    """All sixteen physical plans must produce identical results."""

    @pytest.mark.parametrize(
        "join_strategy,groupby_strategy",
        list(itertools.product(JoinStrategy, GroupByStrategy)),
    )
    def test_join_and_groupby_combos(self, driver, dfs, join_strategy, groupby_strategy):
        vertices = list(btc_graph(80, seed=6))
        path = "/in/plan-%s-%s" % (join_strategy.name, groupby_strategy.name)
        write_graph_to_dfs(dfs, path, iter(vertices), num_files=3)
        results = []
        for connector_policy in ConnectorPolicy:
            for storage in VertexStorage:
                job = sssp.build_job(
                    source_id=0,
                    join_strategy=join_strategy,
                    groupby_strategy=groupby_strategy,
                    connector_policy=connector_policy,
                    vertex_storage=storage,
                )
                out = "/out/%s-%s-%s" % (path.strip("/"), connector_policy.name, storage.name)
                driver.run(job, path, output_path=out)
                results.append(tuple(sorted(driver.read_output(out))))
        assert len(set(results)) == 1
        expected = reference_sssp(vertices, 0)
        got = _read_values_from_lines(results[0])
        for vid, dist in expected.items():
            if not math.isinf(dist):
                assert got[vid] == pytest.approx(dist)


class MessageToGhostVertex(Vertex):
    """Sends a message to a vertex that does not exist (left-outer case)."""

    def compute(self, messages):
        if self.superstep == 1:
            self.value = 0.0
            if self.vertex_id == 0:
                self.send_message(999, 7.0)
        else:
            incoming = list(messages)
            if incoming:
                self.value = incoming[0]
        self.vote_to_halt()


class TestPregelSemantics:
    def test_message_to_missing_vertex_creates_it(self, driver, dfs):
        write_graph_to_dfs(dfs, "/in/ghost", chain_graph(3), num_files=2)
        job = PregelixJob("ghost", MessageToGhostVertex)
        driver.run(job, "/in/ghost", output_path="/out/ghost")
        got = _read_values(driver, "/out/ghost")
        assert 999 in got  # auto-created with NULL fields, then computed
        assert got[999] == 7.0

    def test_num_vertices_includes_created(self, driver, dfs):
        write_graph_to_dfs(dfs, "/in/ghost2", chain_graph(3), num_files=2)
        job = PregelixJob("ghost2", MessageToGhostVertex)
        outcome = driver.run(job, "/in/ghost2")
        assert outcome.gs.num_vertices == 4

    def test_halted_vertex_reactivated_by_message(self, driver, dfs):
        class WakeUp(Vertex):
            def compute(self, messages):
                if self.superstep == 1:
                    self.value = 0.0
                    if self.vertex_id == 0:
                        self.send_message(1, 1.0)
                else:
                    self.value = (self.value or 0.0) + sum(messages)
                self.vote_to_halt()

        write_graph_to_dfs(dfs, "/in/wake", chain_graph(2), num_files=1)
        job = PregelixJob("wake", WakeUp)
        outcome = driver.run(job, "/in/wake", output_path="/out/wake")
        got = _read_values(driver, "/out/wake")
        assert got[1] == 1.0
        assert outcome.supersteps == 2

    def test_max_supersteps_caps_execution(self, driver, dfs):
        class Forever(Vertex):
            def compute(self, messages):
                self.value = float(self.superstep)
                self.send_message_to_all_edges(1.0)

        write_graph_to_dfs(dfs, "/in/loop", chain_graph(4, bidirectional=True), num_files=2)
        job = PregelixJob("forever", Forever, max_supersteps=5)
        outcome = driver.run(job, "/in/loop")
        assert outcome.supersteps == 5


class VoteCountAggregator(GlobalAggregator):
    def init(self):
        return 0.0

    def accumulate(self, state, contribution):
        return state + contribution

    def merge(self, left, right):
        return left + right

    def value_serde(self):
        return serde.FLOAT64


class TestGlobalAggregation:
    def test_aggregate_visible_next_superstep(self, driver, dfs):
        observed = []

        class Contributor(Vertex):
            def compute(self, messages):
                if self.superstep == 1:
                    self.value = 0.0
                    self.aggregate(1.0)
                    self.send_message(self.vertex_id, 0.0)  # stay alive
                elif self.superstep == 2:
                    observed.append(self.global_aggregate)
                    list(messages)
                self.vote_to_halt()

        write_graph_to_dfs(dfs, "/in/agg", chain_graph(5), num_files=2)
        job = PregelixJob("agg", Contributor, aggregator=VoteCountAggregator())
        driver.run(job, "/in/agg")
        assert observed == [5.0] * 5


class TestStatistics:
    def test_superstep_stats_recorded(self, driver, dfs):
        write_graph_to_dfs(dfs, "/in/st", chain_graph(10), num_files=2)
        outcome = driver.run(sssp.build_job(source_id=0), "/in/st")
        assert outcome.stats.num_supersteps == outcome.supersteps
        assert outcome.stats.total_messages_sent >= 9
        assert outcome.stats.avg_iteration_seconds > 0
        assert outcome.stats.live_machines  # cluster snapshot happened

    def test_gs_tracks_counts(self, driver, dfs):
        vertices = list(chain_graph(10))
        write_graph_to_dfs(dfs, "/in/cnt", iter(vertices), num_files=2)
        outcome = driver.run(sssp.build_job(source_id=0), "/in/cnt")
        assert outcome.gs.num_vertices == 10
        assert outcome.gs.num_edges == 9


def _read_values(driver, path):
    return _read_values_from_lines(driver.read_output(path))


def _read_values_from_lines(lines):
    values = {}
    for line in lines:
        fields = line.split()
        values[int(fields[0])] = float(fields[1]) if fields[1] != "_" else None
    return values
