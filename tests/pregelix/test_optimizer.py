"""Tests for the cost-based physical plan optimizer."""

import pytest

from repro.algorithms import pagerank, sssp
from repro.graphs.generators import btc_graph, chain_graph, webmap_graph
from repro.graphs.io import write_graph_to_dfs
from repro.pregelix import ConnectorPolicy, GroupByStrategy, JoinStrategy
from repro.pregelix.optimizer import CostBasedOptimizer, PlanDecision
from repro.pregelix.stats import SuperstepStats


def stats_for(processed, combined, messages=0, num_vertices=1000, misses=0):
    return SuperstepStats(
        superstep=2,
        elapsed=0.1,
        network_bytes=0,
        network_messages=0,
        disk_read_bytes=0,
        disk_write_bytes=0,
        vertices_processed=processed,
        messages_sent=messages,
        combined_messages=combined,
        cache_misses=misses,
    )


class TestDecisionLogic:
    def test_initial_plan_is_full_outer(self):
        optimizer = CostBasedOptimizer(num_partitions=8)
        decision = optimizer.initial_plan(1000, 6000)
        assert decision.join_strategy == JoinStrategy.FULL_OUTER

    def test_initial_groupby_follows_fanin(self):
        dense = CostBasedOptimizer(8).initial_plan(1000, 9000)
        sparse = CostBasedOptimizer(8).initial_plan(1000, 2000)
        assert dense.groupby_strategy == GroupByStrategy.HASHSORT
        assert sparse.groupby_strategy == GroupByStrategy.SORT

    def test_connector_choice_by_cluster_size(self):
        small = CostBasedOptimizer(4).initial_plan(10, 10)
        large = CostBasedOptimizer(32).initial_plan(10, 10)
        assert small.connector_policy == ConnectorPolicy.MERGED
        assert large.connector_policy == ConnectorPolicy.UNMERGED

    def test_sparse_frontier_switches_to_left_outer(self):
        optimizer = CostBasedOptimizer(8, live_decay=0.0)  # no smoothing
        optimizer.initial_plan(1000, 6000)
        decision = optimizer.next_plan(stats_for(processed=20, combined=20), 1000)
        assert decision.join_strategy == JoinStrategy.LEFT_OUTER
        assert decision.probe_cost < decision.scan_cost

    def test_dense_frontier_stays_full_outer(self):
        optimizer = CostBasedOptimizer(8, live_decay=0.0)
        optimizer.initial_plan(1000, 6000)
        decision = optimizer.next_plan(stats_for(processed=900, combined=900), 1000)
        assert decision.join_strategy == JoinStrategy.FULL_OUTER

    def test_cache_misses_tip_the_balance(self):
        """Moderately live + out-of-core -> the probe side wins on disk."""
        optimizer = CostBasedOptimizer(8, live_decay=0.0)
        optimizer.initial_plan(1000, 6000)
        in_memory = optimizer.next_plan(
            stats_for(processed=300, combined=300, misses=0), 1000
        )
        assert in_memory.join_strategy == JoinStrategy.FULL_OUTER
        optimizer2 = CostBasedOptimizer(8, live_decay=0.0)
        optimizer2.initial_plan(1000, 6000)
        spilling = optimizer2.next_plan(
            stats_for(processed=300, combined=300, misses=100_000), 1000
        )
        assert spilling.join_strategy == JoinStrategy.LEFT_OUTER

    def test_smoothing_prevents_plan_flapping(self):
        optimizer = CostBasedOptimizer(8, live_decay=0.8)
        optimizer.initial_plan(1000, 6000)
        # One quiet superstep right after a dense one shouldn't flip.
        decision = optimizer.next_plan(stats_for(processed=5, combined=5), 1000)
        assert decision.join_strategy == JoinStrategy.FULL_OUTER

    def test_combiner_reduction_selects_hashsort(self):
        optimizer = CostBasedOptimizer(8, live_decay=0.0)
        optimizer.initial_plan(1000, 6000)
        heavy = optimizer.next_plan(
            stats_for(processed=900, combined=100, messages=1000), 1000
        )
        assert heavy.groupby_strategy == GroupByStrategy.HASHSORT
        optimizer2 = CostBasedOptimizer(8, live_decay=0.0)
        optimizer2.initial_plan(1000, 6000)
        light = optimizer2.next_plan(
            stats_for(processed=900, combined=900, messages=1000), 1000
        )
        assert light.groupby_strategy == GroupByStrategy.SORT

    def test_trace_records_switches(self):
        optimizer = CostBasedOptimizer(8, live_decay=0.0)
        optimizer.initial_plan(1000, 6000)
        optimizer.next_plan(stats_for(processed=900, combined=900), 1000)
        optimizer.next_plan(stats_for(processed=10, combined=10), 1000)
        assert optimizer.trace.switches() == [3]

    def test_apply_installs_choices(self):
        job = sssp.build_job(auto_optimize=True)
        optimizer = CostBasedOptimizer(8)
        decision = PlanDecision(
            join_strategy=JoinStrategy.LEFT_OUTER,
            groupby_strategy=GroupByStrategy.HASHSORT,
            connector_policy=ConnectorPolicy.UNMERGED,
        )
        optimizer.apply(job, decision)
        assert job.join_strategy == JoinStrategy.LEFT_OUTER
        assert job.groupby_strategy == GroupByStrategy.HASHSORT


class TestEndToEnd:
    def test_optimized_sssp_switches_on_sparse_graph(self, driver, dfs):
        """A chain has a 1-vertex frontier: the optimizer must go LOJ."""
        write_graph_to_dfs(dfs, "/in/chain", chain_graph(60), num_files=3)
        job = sssp.build_job(
            source_id=0, join_strategy=JoinStrategy.FULL_OUTER, auto_optimize=True
        )
        outcome = driver.run(job, "/in/chain", output_path="/out/opt")
        trace = outcome.stats.optimizer_trace
        assert trace is not None
        joins = [d.join_strategy for d in trace.decisions]
        assert joins[0] == JoinStrategy.FULL_OUTER  # superstep 1
        assert JoinStrategy.LEFT_OUTER in joins  # switched once sparse
        values = {
            int(l.split()[0]): float(l.split()[1])
            for l in driver.read_output("/out/opt")
        }
        assert values[59] == pytest.approx(59.0)

    def test_optimized_matches_static_results(self, driver, dfs):
        vertices = list(btc_graph(300, seed=3))
        write_graph_to_dfs(dfs, "/in/g", iter(vertices), num_files=3)
        driver.run(sssp.build_job(source_id=0), "/in/g", output_path="/out/static")
        job = sssp.build_job(source_id=0, auto_optimize=True)
        driver.run(job, "/in/g", output_path="/out/auto")
        assert sorted(driver.read_output("/out/auto")) == sorted(
            driver.read_output("/out/static")
        )

    def test_switches_fire_on_sparsifying_frontier(self, driver, dfs):
        """SSSP on a chain sparsifies to a 1-vertex frontier; the trace
        must report the superstep of the FOJ->LOJ flip via switches()."""
        write_graph_to_dfs(dfs, "/in/sw", chain_graph(60), num_files=3)
        job = sssp.build_job(
            source_id=0, join_strategy=JoinStrategy.FULL_OUTER, auto_optimize=True
        )
        outcome = driver.run(job, "/in/sw")
        trace = outcome.stats.optimizer_trace
        switches = trace.switches()
        assert switches, "optimizer never switched join strategy"
        first = switches[0]
        # The flip happens after at least one observed superstep and is
        # consistent with the recorded decisions around it.
        assert first >= 2
        assert trace.decisions[first - 2].join_strategy == JoinStrategy.FULL_OUTER
        assert trace.decisions[first - 1].join_strategy == JoinStrategy.LEFT_OUTER
        # The flip is also visible in the telemetry replan events.
        replans = driver.telemetry.events.snapshot(name="optimizer.replan")
        assert any(
            e.args["join_strategy"] == JoinStrategy.LEFT_OUTER.value for e in replans
        )

    @pytest.mark.parametrize(
        "static_join", [JoinStrategy.FULL_OUTER, JoinStrategy.LEFT_OUTER]
    )
    def test_optimizer_on_vs_off_identical(self, driver, dfs, static_join):
        """Optimized SSSP must equal the static plan from either start."""
        vertices = list(btc_graph(200, seed=11))
        write_graph_to_dfs(dfs, "/in/oo", iter(vertices), num_files=3)
        driver.run(
            sssp.build_job(source_id=0, join_strategy=static_join),
            "/in/oo",
            output_path="/out/oo-static",
        )
        driver.run(
            sssp.build_job(
                source_id=0, join_strategy=static_join, auto_optimize=True
            ),
            "/in/oo",
            output_path="/out/oo-auto",
        )
        assert sorted(driver.read_output("/out/oo-auto")) == sorted(
            driver.read_output("/out/oo-static")
        )

    def test_pagerank_stays_full_outer(self, driver, dfs):
        write_graph_to_dfs(dfs, "/in/web", webmap_graph(300, seed=2), num_files=3)
        job = pagerank.build_job(iterations=5, auto_optimize=True)
        outcome = driver.run(job, "/in/web")
        joins = {d.join_strategy for d in outcome.stats.optimizer_trace.decisions}
        assert joins == {JoinStrategy.FULL_OUTER}

    def test_optimizer_keeps_vid_index_available(self, driver, dfs):
        """needs_vid must hold under auto_optimize even when starting FOJ."""
        job = pagerank.build_job(iterations=3, auto_optimize=True)
        assert job.needs_vid
        assert not pagerank.build_job(iterations=3).needs_vid
