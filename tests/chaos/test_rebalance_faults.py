"""Chaos at the elastic handoff: faults mid-rebalance must be invisible.

The ``rebalance`` fault site fires inside the superstep-boundary
handoff, at its two interesting moments: just before the handoff
checkpoint is written (``phase="checkpoint"``) and just before the
restore onto the new assignment (``phase="restore"``). A kill or
transient there lands in the driver's normal recovery path, which falls
back to the latest *verified* checkpoint — so a run that lost a machine
in the middle of rebalancing still finishes bit-identical to a
fault-free static run.

The site is deliberately excluded from :meth:`FaultPlan.random`'s
default pool: pre-existing seeded schedules must keep replaying the
exact plans they produced before the site existed.
"""

import pytest

from repro.algorithms import pagerank
from repro.chaos import ChaosError, FaultInjector, FaultPlan, FaultSpec
from repro.graphs.generators import btc_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver

VERTICES = 80
GRAPH_SEED = 5
VIRTUAL_PARTITIONS = 6


def run_pagerank(root_dir, plan=None, scale_at=None):
    cluster = HyracksCluster(
        num_nodes=3,
        root_dir=str(root_dir),
        virtual_partitions=VIRTUAL_PARTITIONS,
    )
    try:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(
            dfs, "/in/g", btc_graph(VERTICES, seed=GRAPH_SEED), num_files=3
        )
        driver = PregelixDriver(cluster, dfs)
        injector = None
        if plan is not None:
            injector = FaultInjector(plan, telemetry=cluster.telemetry).attach(
                cluster, dfs=dfs
            )
        job = pagerank.build_job(iterations=6, checkpoint_interval=1)
        outcome = driver.run(
            job, "/in/g", output_path="/out/r",
            scale_at=dict(scale_at) if scale_at else None,
        )
        lines = sorted(driver.read_output("/out/r"))
        return lines, outcome, injector, cluster.telemetry
    finally:
        cluster.close()


class TestRebalanceFaults:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        lines, outcome, _, _ = run_pagerank(tmp_path_factory.mktemp("ref"))
        return lines, outcome.supersteps

    @pytest.mark.parametrize("phase_hit", [1, 2], ids=["checkpoint", "restore"])
    def test_kill_mid_handoff_recovers_bit_identical(
        self, reference, tmp_path, phase_hit
    ):
        """Losing a machine during the handoff falls back to the last
        verified checkpoint; hit 1 is the pre-checkpoint probe, hit 2
        the pre-restore probe."""
        expected, supersteps = reference
        plan = FaultPlan(
            [FaultSpec(site="rebalance", action="kill", node="node1",
                       at_hit=phase_hit)]
        )
        lines, outcome, injector, telemetry = run_pagerank(
            tmp_path, plan=plan, scale_at={3: 4}
        )
        assert [f.site for f in injector.fired] == ["rebalance"]
        assert outcome.recoveries >= 1
        assert outcome.supersteps == supersteps
        assert lines == expected
        assert telemetry.events.snapshot(name="failure.recovered")

    def test_transient_mid_handoff_recovers_bit_identical(
        self, reference, tmp_path
    ):
        expected, _ = reference
        plan = FaultPlan(
            [FaultSpec(site="rebalance", action="transient_io", at_hit=2)]
        )
        lines, outcome, injector, _ = run_pagerank(
            tmp_path, plan=plan, scale_at={3: 2}
        )
        assert [f.action for f in injector.fired] == ["transient_io"]
        assert outcome.recoveries >= 1
        assert lines == expected

    def test_faultfree_elastic_matches_reference(self, reference, tmp_path):
        """Control: the same schedule without faults is also identical."""
        expected, _ = reference
        lines, outcome, _, _ = run_pagerank(tmp_path, scale_at={3: 4})
        assert outcome.recoveries == 0
        assert outcome.stats.rebalances
        assert lines == expected


class TestSiteStability:
    def test_random_plans_never_draw_rebalance(self):
        """Seeded default schedules predate the site and must not change."""
        nodes = ["node0", "node1", "node2"]
        for seed in range(40):
            plan = FaultPlan.random(seed, nodes, num_faults=5)
            assert all(spec.site != "rebalance" for spec in plan)

    def test_rebalance_spec_validates(self):
        FaultSpec(site="rebalance", action="kill")
        FaultSpec(site="rebalance", action="transient_io")
        with pytest.raises(ChaosError):
            FaultSpec(site="rebalance", action="corrupt")
