"""Unit tests for the fault plan / injector machinery."""

import pytest

from repro.chaos import (
    CORE_ACTIONS,
    FAULT_ACTIONS,
    FAULT_SITES,
    ChaosError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.common.errors import JobFailure, WorkerFailure
from repro.hyracks.engine import HyracksCluster
from repro.telemetry import Telemetry


@pytest.fixture
def cluster(tmp_path):
    with HyracksCluster(num_nodes=3, root_dir=str(tmp_path / "c")) as c:
        yield c


class TestFaultSpec:
    def test_validates_site(self):
        with pytest.raises(ChaosError):
            FaultSpec(site="nonsense")

    def test_validates_action(self):
        with pytest.raises(ChaosError):
            FaultSpec(site="operator.open", action="explode")

    def test_validates_hit(self):
        with pytest.raises(ChaosError):
            FaultSpec(site="operator.open", at_hit=0)

    def test_describe_mentions_site_and_action(self):
        spec = FaultSpec(site="page.read", action="io", node="node2", at_hit=4)
        text = spec.describe()
        assert "page.read" in text and "io" in text and "node2" in text

    def test_taxonomy_covers_every_layer(self):
        layers = {site.split(".")[0] for site in FAULT_SITES}
        assert layers == {
            "superstep", "operator", "page", "checkpoint", "dfs", "rebalance",
            "journal", "service",
        }
        assert set(FAULT_ACTIONS) == {
            "interruption",
            "io",
            "kill",
            "delay",
            "transient_io",
            "corrupt",
            "torn_write",
        }
        # Seeded schedules default to the original pool, so pre-existing
        # seeds keep replaying the exact same schedules.
        assert set(CORE_ACTIONS) == {"interruption", "io", "kill", "delay"}


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        nodes = ["node0", "node1", "node2"]
        a = FaultPlan.random(99, nodes, num_faults=4)
        b = FaultPlan.random(99, nodes, num_faults=4)
        assert a.specs == b.specs

    def test_different_seed_different_plan(self):
        nodes = ["node0", "node1", "node2"]
        plans = [FaultPlan.random(seed, nodes, num_faults=4).specs for seed in range(20)]
        assert any(plans[0] != other for other in plans[1:])

    def test_reset_clears_hits(self):
        plan = FaultPlan([FaultSpec(site="operator.open", at_hit=1)])
        plan.specs[0].hits = 5
        plan.specs[0].fired = True
        plan.reset()
        assert plan.specs[0].hits == 0 and not plan.specs[0].fired

    def test_lethal_faults_capped_below_cluster_size(self):
        nodes = ["node0", "node1", "node2"]
        for seed in range(30):
            plan = FaultPlan.random(seed, nodes, num_faults=6)
            lethal = sum(1 for s in plan if s.action != "delay")
            assert lethal <= len(nodes) - 2

    def test_min_superstep_defaults_survivable(self):
        plan = FaultPlan.random(5, ["node0"], num_faults=3, max_kills=0)
        assert all(spec.min_superstep >= 2 for spec in plan)

    def test_empty_nodes_rejected(self):
        with pytest.raises(ChaosError):
            FaultPlan.random(1, [])


class TestFaultInjector:
    def test_attach_wires_cluster_and_nodes(self, cluster):
        injector = FaultInjector(FaultPlan()).attach(cluster)
        assert cluster.fault_injector is injector
        for node in cluster.nodes.values():
            assert node.fault_injector is injector
            assert node.buffer_cache.fault_injector is injector
        injector.detach()
        assert cluster.fault_injector is None
        assert all(n.fault_injector is None for n in cluster.nodes.values())

    def test_fires_at_exact_hit(self, cluster):
        plan = FaultPlan([FaultSpec(site="operator.open", action="io", at_hit=3)])
        injector = FaultInjector(plan).attach(cluster)
        injector.begin_superstep(1)
        injector.check("operator.open", node="node0")
        injector.check("operator.open", node="node0")
        with pytest.raises(WorkerFailure) as exc:
            injector.check("operator.open", node="node0")
        assert exc.value.kind == "io"
        assert len(injector.fired) == 1
        assert injector.fired[0].hit == 3

    def test_spec_fires_once(self, cluster):
        plan = FaultPlan([FaultSpec(site="operator.open", action="io", at_hit=1)])
        injector = FaultInjector(plan).attach(cluster)
        injector.begin_superstep(1)
        with pytest.raises(WorkerFailure):
            injector.check("operator.open", node="node0")
        injector.check("operator.open", node="node0")  # no second firing
        assert len(injector.fired) == 1

    def test_node_filter(self, cluster):
        plan = FaultPlan(
            [FaultSpec(site="page.read", action="io", node="node1", at_hit=1)]
        )
        injector = FaultInjector(plan).attach(cluster)
        injector.begin_superstep(1)
        injector.check("page.read", node="node0")  # wrong node: no hit
        assert plan.specs[0].hits == 0
        with pytest.raises(WorkerFailure) as exc:
            injector.check("page.read", node="node1")
        assert exc.value.node_id == "node1"

    def test_min_superstep_gates_counting(self, cluster):
        plan = FaultPlan(
            [FaultSpec(site="operator.next", action="io", at_hit=1, min_superstep=3)]
        )
        injector = FaultInjector(plan).attach(cluster)
        injector.begin_superstep(1)
        injector.check("operator.next", node="node0")
        injector.begin_superstep(2)
        injector.check("operator.next", node="node0")
        assert plan.specs[0].hits == 0
        injector.begin_superstep(3)
        with pytest.raises(WorkerFailure):
            injector.check("operator.next", node="node0")

    def test_kill_powers_off_target(self, cluster):
        plan = FaultPlan(
            [FaultSpec(site="operator.open", action="kill", node="node2", at_hit=1)]
        )
        injector = FaultInjector(plan).attach(cluster)
        injector.begin_superstep(2)
        # The check runs on node0; node2 dies silently.
        injector.check("operator.open", node="node0")
        assert "node2" not in cluster.alive_node_ids()
        assert injector.fired[0].action == "kill"

    def test_kill_on_own_node_raises(self, cluster):
        plan = FaultPlan(
            [FaultSpec(site="operator.open", action="kill", node="node1", at_hit=1)]
        )
        injector = FaultInjector(plan).attach(cluster)
        injector.begin_superstep(2)
        with pytest.raises(WorkerFailure):
            injector.check("operator.open", node="node1")
        assert "node1" not in cluster.alive_node_ids()

    def test_delay_advances_sim_clock(self, cluster):
        plan = FaultPlan(
            [
                FaultSpec(
                    site="operator.close", action="delay", at_hit=1, delay_seconds=1.5
                )
            ]
        )
        injector = FaultInjector(plan).attach(cluster)
        injector.begin_superstep(1)
        before = cluster.telemetry.sim_clock.seconds
        injector.check("operator.close", node="node0")
        assert cluster.telemetry.sim_clock.seconds == pytest.approx(before + 1.5)
        assert len(injector.fired) == 1

    def test_superstep_begin_wraps_into_job_failure(self, cluster):
        plan = FaultPlan([FaultSpec(site="superstep.begin", action="interruption")])
        injector = FaultInjector(plan).attach(cluster)
        with pytest.raises(JobFailure):
            injector.begin_superstep(1)

    def test_disarmed_injector_is_inert(self, cluster):
        plan = FaultPlan([FaultSpec(site="operator.open", action="io", at_hit=1)])
        injector = FaultInjector(plan).attach(cluster)
        injector.disarm(reason="test")
        injector.begin_superstep(5)
        injector.check("operator.open", node="node0")
        assert injector.fired == [] and plan.specs[0].hits == 0

    def test_firing_emits_telemetry(self, cluster):
        plan = FaultPlan([FaultSpec(site="page.write", action="io", at_hit=1)])
        injector = FaultInjector(plan, telemetry=cluster.telemetry).attach(cluster)
        injector.begin_superstep(1)
        with pytest.raises(WorkerFailure):
            injector.check("page.write", node="node0")
        events = cluster.telemetry.events.snapshot(name="chaos.fault")
        assert len(events) == 1
        assert events[0].args["site"] == "page.write"
        assert events[0].args["action"] == "io"

    def test_summary_lists_pending_and_fired(self, cluster):
        plan = FaultPlan(
            [
                FaultSpec(site="operator.open", action="io", at_hit=1),
                FaultSpec(site="page.read", action="io", at_hit=99),
            ],
            seed=123,
        )
        injector = FaultInjector(plan).attach(cluster)
        injector.begin_superstep(1)
        with pytest.raises(WorkerFailure):
            injector.check("operator.open", node="node0")
        summary = injector.summary()
        assert summary["seed"] == 123
        assert len(summary["fired"]) == 1
        assert len(summary["pending"]) == 1


class TestHooksReachInjector:
    """The engine, buffer cache, and checkpoint paths consult the hooks."""

    def test_engine_operator_hooks_fire(self, cluster, tmp_path):
        from repro.algorithms import sssp
        from repro.graphs.generators import chain_graph
        from repro.graphs.io import write_graph_to_dfs
        from repro.hdfs import MiniDFS
        from repro.pregelix import PregelixDriver

        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(dfs, "/in/g", chain_graph(12), num_files=3)
        plan = FaultPlan(
            [FaultSpec(site="operator.open", action="io", at_hit=2, min_superstep=2)]
        )
        injector = FaultInjector(plan).attach(cluster)
        job = sssp.build_job(source_id=0, checkpoint_interval=1)
        driver = PregelixDriver(cluster, dfs)
        outcome = driver.run(job, "/in/g", output_path="/out/r")
        assert len(injector.fired) == 1
        assert outcome.recoveries == 1
        assert injector.checks > 0

    def test_checkpoint_write_hook_fires(self, cluster):
        from repro.algorithms import pagerank
        from repro.graphs.generators import chain_graph
        from repro.graphs.io import write_graph_to_dfs
        from repro.hdfs import MiniDFS
        from repro.pregelix import PregelixDriver

        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(dfs, "/in/g", chain_graph(12), num_files=3)
        plan = FaultPlan(
            [
                FaultSpec(
                    site="checkpoint.write", action="io", at_hit=1, min_superstep=2
                )
            ]
        )
        injector = FaultInjector(plan).attach(cluster)
        job = pagerank.build_job(iterations=4, checkpoint_interval=1)
        driver = PregelixDriver(cluster, dfs)
        outcome = driver.run(job, "/in/g")
        assert [f.site for f in injector.fired] == ["checkpoint.write"]
        assert outcome.recoveries >= 1
