"""Durable-recovery chaos tests: corruption, torn writes, transients.

The acceptance story for the durability work, end to end:

* a chaos schedule that corrupts or tears the latest checkpoint makes
  recovery fall back to the previous *verified* checkpoint, and the
  recovered run stays bit-identical to the fault-free run;
* transient I/O faults are absorbed in place by seeded backoff — no
  recovery, no blacklist, identical output;
* every decision (retry, verify failure, fallback) is visible in
  telemetry and replayable from the seed.
"""

import pytest

from repro.algorithms import pagerank
from repro.chaos import FaultInjector, FaultPlan, FaultSpec, PlanChoice
from repro.graphs.generators import btc_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver


@pytest.fixture
def env(tmp_path):
    cluster = HyracksCluster(num_nodes=3, root_dir=str(tmp_path / "c"))
    dfs = MiniDFS(datanodes=cluster.node_ids())
    write_graph_to_dfs(dfs, "/in/g", btc_graph(120, seed=5), num_files=3)
    driver = PregelixDriver(cluster, dfs)
    yield cluster, dfs, driver
    cluster.close()


def run_reference(tmp_path_factory, job_factory):
    root = tmp_path_factory.mktemp("ref")
    with HyracksCluster(num_nodes=3, root_dir=str(root)) as cluster:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(dfs, "/in/g", btc_graph(120, seed=5), num_files=3)
        driver = PregelixDriver(cluster, dfs)
        driver.run(job_factory(), "/in/g", output_path="/out/ref")
        return sorted(driver.read_output("/out/ref"))


def event_names(cluster):
    return [e.name for e in cluster.telemetry.events.snapshot()]


class TestCorruptedCheckpointFallback:
    def _damage_then_kill(self, damage_action):
        """Damage a checkpoint blob written at superstep 3, then lose a
        machine in superstep 4, forcing recovery to choose a checkpoint."""
        return FaultPlan(
            [
                # dfs.write hits from superstep 3: 1 = the GS primary
                # copy, 2-4 = staged vertex blobs; hit 3 lands on a
                # checkpoint partition file.
                FaultSpec(
                    site="dfs.write", action=damage_action, at_hit=3, min_superstep=3
                ),
                FaultSpec(
                    site="operator.open",
                    action="kill",
                    node="node1",
                    at_hit=2,
                    min_superstep=4,
                ),
            ]
        )

    @pytest.mark.parametrize("damage", ["corrupt", "torn_write"])
    def test_falls_back_to_verified_checkpoint_bit_identical(
        self, env, tmp_path_factory, damage
    ):
        cluster, dfs, driver = env
        expected = run_reference(
            tmp_path_factory, lambda: pagerank.build_job(iterations=6)
        )
        injector = FaultInjector(self._damage_then_kill(damage)).attach(
            cluster, dfs=dfs
        )
        job = pagerank.build_job(iterations=6, checkpoint_interval=1)
        outcome = driver.run(job, "/in/g", output_path="/out/rec")
        assert outcome.recoveries >= 1
        fired = {f.action for f in injector.fired}
        assert damage in fired and "kill" in fired
        # The damage landed on a checkpoint blob, not some other file.
        (damage_event,) = cluster.telemetry.events.snapshot(name="chaos.fault")[:1]
        assert "/ckpt/" in damage_event.args["path"]
        # The damaged newest checkpoint was detected and skipped ...
        failed = cluster.telemetry.events.snapshot(name="checkpoint.verify_failed")
        assert failed and failed[0].args["superstep"] == 3
        fallbacks = cluster.telemetry.events.snapshot(name="recovery.fallback")
        assert fallbacks and fallbacks[0].args["superstep"] == 2
        # ... and the recovered run reproduces the fault-free answer.
        assert sorted(driver.read_output("/out/rec")) == expected
        injector.detach()

    def test_all_checkpoints_damaged_means_none_selectable(self, env):
        from repro.pregelix.checkpoint import Checkpointer

        cluster, dfs, driver = env
        job = pagerank.build_job(iterations=4, checkpoint_interval=1)
        outcome = driver.run(job, "/in/g", keep_state=True)
        checkpointer = Checkpointer(
            outcome.generator, telemetry=cluster.telemetry
        )
        committed = checkpointer.committed_supersteps()
        assert committed  # retention kept at least the newest generations
        for superstep in committed:
            dfs.corrupt(checkpointer.path(superstep, "vertex", 0))
        assert checkpointer.latest_checkpoint() is None
        assert len(
            cluster.telemetry.events.snapshot(name="checkpoint.verify_failed")
        ) == len(committed)
        driver.cleanup(outcome.generator)

    def test_gc_retains_fallback_generations_only(self, env):
        from repro.pregelix.checkpoint import Checkpointer

        cluster, dfs, driver = env
        job = pagerank.build_job(iterations=6, checkpoint_interval=1)
        outcome = driver.run(job, "/in/g", keep_state=True)
        checkpointer = Checkpointer(outcome.generator)
        # interval=1 over 6 supersteps commits 1..5 (none at halt), but
        # GC keeps only the newest two generations.
        assert checkpointer.committed_supersteps() == [4, 5]
        assert checkpointer.superstep_directories() == [4, 5]
        assert cluster.telemetry.events.snapshot(name="checkpoint.gc")
        driver.cleanup(outcome.generator)


class TestKilledMidCheckpoint:
    def test_uncommitted_checkpoint_invisible_to_recovery(
        self, env, tmp_path_factory
    ):
        """A machine lost *during* the checkpoint plan leaves staging
        debris but no manifest; recovery must use the previous commit."""
        cluster, dfs, driver = env
        expected = run_reference(
            tmp_path_factory, lambda: pagerank.build_job(iterations=6)
        )
        plan = FaultPlan(
            [
                FaultSpec(
                    site="checkpoint.write",
                    action="kill",
                    node="node1",
                    at_hit=2,
                    min_superstep=3,
                )
            ]
        )
        injector = FaultInjector(plan).attach(cluster, dfs=dfs)
        job = pagerank.build_job(iterations=6, checkpoint_interval=1)
        outcome = driver.run(job, "/in/g", output_path="/out/mid")
        assert outcome.recoveries >= 1
        fallbacks = cluster.telemetry.events.snapshot(name="recovery.fallback")
        assert not fallbacks  # newest *committed* checkpoint was intact
        assert sorted(driver.read_output("/out/mid")) == expected
        injector.detach()

    def test_differential_cell_stays_in_its_equivalence_class(
        self, differential_checker
    ):
        """The same scenario through the differential harness: a faulted
        cell must reproduce its fault-free twin bit for bit."""
        checker = differential_checker("pagerank")
        plan = PlanChoice.parse("foj/sort/unmerged/btree")
        baseline = checker.run_cell(plan, budget="roomy", fault_seed=None)
        fault_plan = FaultPlan(
            [
                FaultSpec(
                    site="dfs.write", action="corrupt", at_hit=3, min_superstep=3
                ),
                FaultSpec(
                    site="checkpoint.write",
                    action="kill",
                    node="node2",
                    at_hit=1,
                    min_superstep=4,
                ),
            ]
        )
        faulted = checker.run_cell(plan, budget="roomy", fault_plan=fault_plan)
        assert baseline.ok and faulted.ok, (baseline.error, faulted.error)
        assert faulted.recoveries >= 1
        assert faulted.lines == baseline.lines


class TestTransientFaults:
    def test_dfs_write_transient_absorbed_in_place(self, env, tmp_path_factory):
        cluster, dfs, driver = env
        expected = run_reference(
            tmp_path_factory, lambda: pagerank.build_job(iterations=4)
        )
        plan = FaultPlan(
            [FaultSpec(site="dfs.write", action="transient_io", at_hit=2, min_superstep=2)]
        )
        injector = FaultInjector(plan).attach(cluster, dfs=dfs)
        job = pagerank.build_job(iterations=4, checkpoint_interval=1)
        outcome = driver.run(job, "/in/g", output_path="/out/tr")
        # Absorbed by DFS-level retry: no recovery, no machine lost.
        assert outcome.recoveries == 0
        assert sorted(cluster.alive_node_ids()) == ["node0", "node1", "node2"]
        retries = cluster.telemetry.events.snapshot(name="retry.attempt")
        assert retries and retries[0].args["what"].startswith("dfs.write")
        assert retries[0].args["backoff_seconds"] > 0
        assert sorted(driver.read_output("/out/tr")) == expected
        injector.detach()

    def test_superstep_begin_transient_retries_whole_plan(
        self, env, tmp_path_factory
    ):
        cluster, dfs, driver = env
        expected = run_reference(
            tmp_path_factory, lambda: pagerank.build_job(iterations=4)
        )
        plan = FaultPlan(
            [
                FaultSpec(
                    site="superstep.begin",
                    action="transient_io",
                    at_hit=1,
                    min_superstep=3,
                )
            ]
        )
        injector = FaultInjector(plan).attach(cluster, dfs=dfs)
        job = pagerank.build_job(iterations=4, checkpoint_interval=2)
        outcome = driver.run(job, "/in/g", output_path="/out/trb")
        assert outcome.recoveries == 0
        retries = cluster.telemetry.events.snapshot(name="retry.attempt")
        assert retries and retries[0].args["what"] == "superstep 3"
        assert outcome.supersteps == 4  # the retried superstep completed
        assert sorted(driver.read_output("/out/trb")) == expected
        injector.detach()


class TestSeededDurabilitySchedules:
    def test_durability_actions_replay_identically(self):
        nodes = ["node0", "node1", "node2"]
        actions = ("corrupt", "torn_write", "transient_io")
        a = FaultPlan.random(11, nodes, num_faults=4, actions=actions)
        b = FaultPlan.random(11, nodes, num_faults=4, actions=actions)
        assert a.specs == b.specs
        # Mutations are forced onto the DFS surface; transients onto
        # retry-safe sites.
        for spec in a:
            if spec.action in ("corrupt", "torn_write"):
                assert spec.site == "dfs.write"
            if spec.action == "transient_io":
                assert spec.site in ("dfs.write", "superstep.begin")

    def test_core_seeds_unchanged_by_new_actions(self):
        """Adding durability actions must not re-shuffle pre-existing
        seeded schedules (they default to the original action pool)."""
        plan = FaultPlan.random(7, ["node0", "node1", "node2"])
        assert all(
            spec.action in ("interruption", "io", "kill", "delay") for spec in plan
        )
        assert all(spec.site != "dfs.write" for spec in plan)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_seeded_durability_matrix_cell(self, differential_checker, seed):
        checker = differential_checker(
            "sssp", fault_actions=("corrupt", "torn_write", "transient_io")
        )
        plan = PlanChoice.parse("foj/sort/unmerged/btree")
        baseline = checker.run_cell(plan, budget="roomy", fault_seed=None)
        faulted = checker.run_cell(plan, budget="roomy", fault_seed=seed)
        assert baseline.ok and faulted.ok, (baseline.error, faulted.error)
        assert faulted.lines == baseline.lines
        assert "--actions corrupt,torn_write,transient_io" in faulted.repro_command()
