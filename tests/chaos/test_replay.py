"""Replayability: one seed -> one failure scenario, bit for bit.

The acceptance bar for the chaos harness: running the same (job, graph,
fault seed) twice on fresh clusters must produce the identical sequence
of chaos/failure telemetry events and the identical final vertex values
after recovery. ``run_id`` is the one intentionally run-scoped field
(a process-wide counter) and is stripped before comparison.
"""

import pytest

from repro.algorithms import pagerank, sssp
from repro.chaos import FaultInjector, FaultPlan
from repro.graphs.generators import btc_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver

#: A seed chosen (by trying a handful) so the schedule actually fires
#: against the pagerank job below — replay of a no-op schedule proves
#: nothing. test_chosen_seed_fires guards against silent drift.
FIRING_SEED = 5


def run_faulted(tmp_path, seed, job_factory, num_faults=2):
    cluster = HyracksCluster(num_nodes=3, root_dir=str(tmp_path))
    try:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(dfs, "/in/g", btc_graph(100, seed=4), num_files=3)
        plan = FaultPlan.random(seed, cluster.node_ids(), num_faults=num_faults)
        injector = FaultInjector(plan).attach(cluster)
        driver = PregelixDriver(cluster, dfs)
        outcome = driver.run(job_factory(), "/in/g", output_path="/out/r")
        lines = tuple(sorted(driver.read_output("/out/r")))
        events = [
            (event.name, event.category, _scrub(event.args))
            for event in cluster.telemetry.events.snapshot()
            if event.category in ("chaos", "failure")
        ]
        return {
            "lines": lines,
            "events": events,
            "fired": [
                (f.spec_index, f.site, f.action, f.node, f.hit, f.superstep)
                for f in injector.fired
            ],
            "recoveries": outcome.recoveries,
        }
    finally:
        cluster.close()


def _scrub(args):
    return tuple(sorted((k, v) for k, v in args.items() if k != "run_id"))


def job_factory():
    return pagerank.build_job(iterations=6, checkpoint_interval=1)


class TestReplay:
    def test_chosen_seed_fires(self, tmp_path):
        run = run_faulted(tmp_path / "probe", FIRING_SEED, job_factory)
        assert run["fired"], (
            "FIRING_SEED no longer fires any fault against this job; "
            "pick a new seed so the replay test keeps meaning something"
        )

    def test_same_seed_identical_failure_events_and_results(self, tmp_path):
        first = run_faulted(tmp_path / "a", FIRING_SEED, job_factory)
        second = run_faulted(tmp_path / "b", FIRING_SEED, job_factory)
        assert first["fired"] == second["fired"]
        assert first["events"] == second["events"]
        assert first["recoveries"] == second["recoveries"]
        assert first["lines"] == second["lines"]

    def test_faulted_run_matches_fault_free_run(self, tmp_path):
        faulted = run_faulted(tmp_path / "f", FIRING_SEED, job_factory)
        cluster = HyracksCluster(num_nodes=3, root_dir=str(tmp_path / "clean"))
        try:
            dfs = MiniDFS(datanodes=cluster.node_ids())
            write_graph_to_dfs(dfs, "/in/g", btc_graph(100, seed=4), num_files=3)
            driver = PregelixDriver(cluster, dfs)
            driver.run(job_factory(), "/in/g", output_path="/out/r")
            clean = tuple(sorted(driver.read_output("/out/r")))
        finally:
            cluster.close()
        assert faulted["lines"] == clean

    def test_different_seeds_differ_somewhere(self, tmp_path):
        """Not a hard guarantee per pair, but across a few seeds the
        schedules must not all collapse to the same behaviour."""
        runs = [
            run_faulted(tmp_path / ("s%d" % seed), seed, job_factory)
            for seed in (1, 2, 5, 9)
        ]
        assert len({tuple(r["fired"]) for r in runs}) > 1
        # Results still all agree — faults never change the answer.
        assert len({r["lines"] for r in runs}) == 1

    def test_replay_with_loj_plan(self, tmp_path):
        def loj_factory():
            return sssp.build_job(source_id=0, checkpoint_interval=1)

        first = run_faulted(tmp_path / "x", 3, loj_factory, num_faults=3)
        second = run_faulted(tmp_path / "y", 3, loj_factory, num_faults=3)
        assert first["events"] == second["events"]
        assert first["lines"] == second["lines"]
