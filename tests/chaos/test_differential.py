"""Differential matrix tests: 16 plans x budgets x fault schedules.

This is the acceptance suite for the paper's plan-equivalence claim:
PageRank, SSSP, and connected components each run across all 16
physical plans (both join strategies, all four group-by strategies,
both B-tree and LSM vertex storage) under a spill-forcing memory
budget, with and without seeded faults, and every run must agree with
the independent networkx/nxadapter reference.
"""

import pytest

from repro.chaos import (
    BUDGETS,
    DifferentialChecker,
    PlanChoice,
    all_plans,
    values_close,
)
from repro.pregelix.api import JoinStrategy, VertexStorage


class TestPlanSpace:
    def test_sixteen_plans(self):
        plans = all_plans()
        assert len(plans) == 16
        assert len({p.signature() for p in plans}) == 16
        # Both storages and both joins are present.
        assert {p.storage for p in plans} == set(VertexStorage)
        assert {p.join for p in plans} == set(JoinStrategy)

    def test_signature_parse_roundtrip(self):
        for plan in all_plans():
            assert PlanChoice.parse(plan.signature()) == plan

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            PlanChoice.parse("foj/sort/unmerged")
        with pytest.raises(ValueError):
            PlanChoice.parse("foj/sort/unmerged/floppy")

    def test_spill_budget_is_actually_tiny(self):
        spill = BUDGETS["spill"]
        assert spill.buffer_cache_bytes <= 16 * 4096
        assert spill.groupby_memory_bytes <= 4096


class TestValuesClose:
    def test_exact_mode(self):
        assert values_close(1.5, 1.5)
        assert not values_close(1.5, 1.5 + 1e-12)
        assert values_close(3, 3)

    def test_tolerant_mode(self):
        assert values_close(1.5, 1.5 + 1e-12, tolerance=1e-9)
        assert not values_close(1.5, 1.6, tolerance=1e-9)

    def test_infinities(self):
        inf = float("inf")
        assert values_close(inf, inf, tolerance=1e-9)
        assert not values_close(inf, 5.0, tolerance=1e-9)

    def test_none(self):
        assert values_close(None, None)
        assert not values_close(None, 1.0)


class TestDifferentialMatrix:
    """The full 16-plan sweep for each algorithm, spill budget included."""

    @pytest.mark.parametrize("algorithm", ["sssp", "cc", "pagerank"])
    def test_all_16_plans_spill_budget_with_faults(
        self, differential_checker, algorithm
    ):
        checker = differential_checker(algorithm)
        report = checker.run_matrix(budgets=("spill",), fault_seeds=(None, 13))
        assert len(report.cells) == 32
        assert report.ok, "\n".join(report.summary_lines())
        # The faulted sweep must have actually exercised recovery
        # somewhere, or the schedule was a no-op.
        assert any(c.faults_fired for c in report.cells), (
            "fault seed 13 fired nothing across 16 plans; pick a new seed"
        )

    @pytest.mark.parametrize("algorithm", ["sssp", "cc"])
    def test_roomy_and_spill_agree(self, differential_checker, algorithm):
        checker = differential_checker(algorithm)
        plans = [PlanChoice.parse("foj/sort/unmerged/btree")]
        report = checker.run_matrix(plans=plans, budgets=("roomy", "spill"))
        assert report.ok, "\n".join(report.summary_lines())
        roomy, spill = report.cells
        # Min-combining algorithms are order-insensitive: bit-equal even
        # across budgets.
        assert roomy.lines == spill.lines

    def test_divergence_reports_repro_command(self, differential_checker):
        checker = differential_checker("sssp")
        plan = PlanChoice.parse("loj/hashsort/unmerged/lsm")
        cell = checker.run_cell(plan, budget="spill", fault_seed=21)
        command = cell.repro_command()
        assert "--algorithm sssp" in command
        assert "--plans loj/hashsort/unmerged/lsm" in command
        assert "--budgets spill" in command
        assert "--fault-seed 21" in command

    def test_reference_mismatch_detected(self, chaos_graph):
        """A deliberately wrong reference must be flagged, proving the
        comparison has teeth."""
        checker = DifferentialChecker("cc", chaos_graph)
        real_reference = checker.case.reference

        def wrong_reference(vertices):
            expected = dict(real_reference(vertices))
            some_vid = next(iter(expected))
            expected[some_vid] = expected[some_vid] + 10**9
            return expected

        checker.case.reference = wrong_reference
        report = checker.run_matrix(
            plans=[PlanChoice.parse("foj/sort/unmerged/btree")]
        )
        assert not report.ok
        assert report.reference_mismatches

    def test_failed_cell_reported_not_raised(self, chaos_graph):
        """A cell whose job crashes becomes a finding, not a test crash."""
        checker = DifferentialChecker("sssp", chaos_graph)
        original = checker.case.build_job

        def broken_job():
            job = original()
            job.max_supersteps = None
            job.checkpoint_interval = None  # fault without checkpoint
            return job

        checker.case.build_job = broken_job
        from repro.chaos import FaultPlan

        # min_superstep=0 so the fault lands before any checkpoint could
        # have been taken even if one were configured.
        checker.checkpoint_interval = None
        plan = PlanChoice.parse("foj/sort/unmerged/btree")
        cell = checker.run_cell(plan, fault_seed=5)
        # With checkpointing disabled the faulted run must either fail
        # (reported in-band) or the schedule never fired; both are
        # legitimate, but an exception must not escape run_cell and a
        # failed cell must carry its error instead of half a result.
        assert (cell.error is None) == (cell.lines is not None)
