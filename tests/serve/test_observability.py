"""Live-service observability (DESIGN.md §18).

Per-job distributed traces assembled out of the shared telemetry
session (solo and batched), the span breakdown on the job document,
the Prometheus scrape under concurrent load, its agreement with the
``/stats`` latency section, and the health-history ring buffer.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import JobService, JobState, ServeHTTPServer
from repro.serve.history import HistorySampler
from repro.serve.jobtrace import select_job_spans
from tests.telemetry.test_export import assert_well_formed_chrome
from tests.telemetry.test_prometheus import parse_exposition

WAIT = 120


def submit(service, algorithm="cc", tenant="alice", **overrides):
    doc = {"tenant": tenant, "algorithm": algorithm, "dataset": "g",
           "use_cache": False}
    doc.update(overrides)
    return service.submit(doc)


@pytest.fixture
def service(serve_graph):
    svc = JobService(num_nodes=3, workers=2, history_interval=0.05)
    svc.add_dataset("g", vertices=serve_graph)
    svc.start()
    yield svc
    svc.shutdown(timeout=WAIT)


@pytest.fixture
def batched_service(serve_graph):
    svc = JobService(num_nodes=3, workers=1, watchdog=False,
                     batch_max=8, batch_window=0.4)
    svc.add_dataset("g", vertices=serve_graph)
    svc.start()
    yield svc
    svc.shutdown(timeout=WAIT)


def span_names(trace):
    return [e["name"] for e in trace["traceEvents"] if e.get("ph") == "B"]


class TestJobTrace:
    def test_solo_trace_is_well_formed_and_complete(self, service):
        record = submit(service, "cc")
        assert record.wait(WAIT) is JobState.SUCCEEDED, record.error
        trace = service.job_trace(record.job_id)
        assert_well_formed_chrome(
            [e for e in trace["traceEvents"] if e.get("ph") != "M"]
        )
        names = span_names(trace)
        # Synthetic lifecycle phases from the record's trace marks...
        assert "queue-wait" in names
        assert "run" in names
        # ...plus the real engine spans the scoped tracer stamped.
        assert any(n.startswith("superstep:") for n in names)
        assert any(n.startswith("pregelix:") for n in names)
        meta = trace["otherData"]
        assert meta["job_id"] == record.job_id
        assert record.run_id in meta["run_ids"]
        assert meta["state"] == "succeeded"
        assert meta["spans"]["end_to_end_seconds"] is not None

    def test_trace_contains_only_that_jobs_spans(self, service):
        first = submit(service, "cc")
        assert first.wait(WAIT) is JobState.SUCCEEDED, first.error
        second = submit(service, "pagerank", params={"iterations": 3})
        assert second.wait(WAIT) is JobState.SUCCEEDED, second.error
        for record, other in ((first, second), (second, first)):
            for span in select_job_spans(
                service.telemetry, record.job_id, record.trace_run_ids
            ):
                args = span.args or {}
                assert args.get("job_id") in (record.job_id, None)
                if args.get("job_id") is None:
                    assert args.get("run_id") in record.trace_run_ids
                    assert args.get("run_id") not in other.trace_run_ids
        # The per-superstep spans in each trace belong to that run alone:
        # pagerank(3 iterations) and cc ran different superstep counts.
        first_steps = [
            n for n in span_names(service.job_trace(first.job_id))
            if n.startswith("superstep:")
        ]
        assert len(first_steps) == first.result["supersteps"]

    def test_trace_spans_carry_job_and_run_ids(self, service):
        record = submit(service, "cc")
        assert record.wait(WAIT) is JobState.SUCCEEDED, record.error
        spans = select_job_spans(
            service.telemetry, record.job_id, record.trace_run_ids
        )
        supersteps = [s for s in spans if s.name.startswith("superstep:")]
        assert supersteps
        for span in supersteps:
            assert span.args.get("job_id") == record.job_id
            assert span.args.get("run_id") == record.run_id
        admission = [s for s in spans if s.name == "admission"]
        assert len(admission) == 1

    def test_unknown_job_trace_is_none(self, service):
        assert service.job_trace("job-does-not-exist") is None

    def test_batched_members_share_run_but_not_lanes(self, batched_service):
        service = batched_service
        records = [
            submit(service, "sssp", params={"source_id": source})
            for source in (0, 3, 7)
        ]
        for record in records:
            assert record.wait(WAIT) is JobState.SUCCEEDED, record.error
        batched = [r for r in records if r.result.get("batch")]
        assert len(batched) >= 2, "no jobs actually shared a run"
        shared_run = batched[0].run_id
        traces = {r.job_id: service.job_trace(r.job_id) for r in batched}
        for record in batched:
            trace = traces[record.job_id]
            assert_well_formed_chrome(
                [e for e in trace["traceEvents"] if e.get("ph") != "M"]
            )
            names = span_names(trace)
            assert shared_run in trace["otherData"]["run_ids"]
            # The shared engine work appears in every member's trace...
            assert any(n.startswith("superstep:") for n in names)
            # ...but another member's fan-out lane never does: lane
            # spans carry their member's job_id explicitly.
            lanes = {
                e["args"]["job_id"]
                for e in trace["traceEvents"]
                if e.get("ph") == "B" and e["name"].startswith("lane:")
            }
            assert lanes == {record.job_id}
        # Every member saw the same shared superstep spans.
        step_sets = [
            {n for n in span_names(t) if n.startswith("superstep:")}
            for t in traces.values()
        ]
        assert all(steps == step_sets[0] for steps in step_sets)


class TestSpanBreakdown:
    def test_document_breakdown_phases_sum_sanely(self, service):
        record = submit(service, "cc")
        assert record.wait(WAIT) is JobState.SUCCEEDED, record.error
        doc = record.to_dict()
        spans = doc["spans"]
        assert spans["queue_wait_seconds"] >= 0.0
        assert spans["run_seconds"] > 0.0
        assert spans["end_to_end_seconds"] >= spans["run_seconds"]
        # A solo run never fanned out.
        assert spans["fanout_seconds"] is None

    def test_breakdown_before_terminal_is_partial(self, service):
        record = submit(service, "cc")
        spans = record.span_breakdown()
        assert spans["end_to_end_seconds"] is None  # not finished yet
        assert record.wait(WAIT) is JobState.SUCCEEDED, record.error
        assert record.span_breakdown()["end_to_end_seconds"] is not None


class TestMetricsEndpoint:
    def test_scrape_under_concurrent_jobs(self, serve_graph):
        service = JobService(num_nodes=3, workers=4, history_interval=None)
        service.add_dataset("g", vertices=serve_graph)
        service.start()
        server = ServeHTTPServer(service, port=0)
        host, port = server.start()
        base = "http://%s:%d" % (host, port)
        try:
            records = [
                submit(service, "pagerank",
                       params={"iterations": 4}, tenant="t%d" % (i % 3))
                for i in range(8)
            ]
            def scrape():
                with urllib.request.urlopen(
                    base + "/metrics", timeout=30
                ) as response:
                    assert response.status == 200
                    assert "0.0.4" in response.headers["Content-Type"]
                    return response.read().decode("utf-8")

            scrapes = [scrape()]
            while not all(r.state.terminal for r in records):
                scrapes.append(scrape())
                time.sleep(0.05)
            for record in records:
                assert record.wait(WAIT) is JobState.SUCCEEDED, record.error
            scrapes.append(scrape())
            assert len(scrapes) >= 2
            parsed = [parse_exposition(text) for text in scrapes]  # no torn lines
            submitted = [
                sum(v for k, v in samples.items()
                    if k.startswith("serve_submitted_total"))
                for samples in parsed
            ]
            # Counters never go backwards across scrapes.
            assert submitted == sorted(submitted)
            assert submitted[-1] == 8
            final = parsed[-1]
            assert any(
                k.startswith("serve_latency_e2e_seconds_bucket") for k in final
            )
            assert final["engine_jobs_executed_total"] >= 1
        finally:
            server.close()
            service.shutdown(timeout=WAIT)

    def test_scrape_agrees_with_stats_latency(self, service):
        for _ in range(2):
            record = submit(service, "cc")
            assert record.wait(WAIT) is JobState.SUCCEEDED, record.error
        latency = service.stats()["latency"]
        summary = latency["alice"]["e2e"]
        assert summary["count"] == 2
        from repro.telemetry.prometheus import render_prometheus

        samples = parse_exposition(
            render_prometheus(service.telemetry.registry)
        )
        assert samples[
            'serve_latency_e2e_seconds_count{tenant="alice"}'
        ] == summary["count"]
        assert samples[
            'serve_latency_e2e_seconds_sum{tenant="alice"}'
        ] == summary["sum"]
        assert samples[
            'serve_latency_queue_wait_seconds_count{tenant="alice"}'
        ] == latency["alice"]["queue_wait"]["count"]


class TestHistory:
    def test_sampler_unit_sample(self, service):
        sampler = HistorySampler(service, interval=3600)  # never auto-fires
        sample = sampler.sample()
        assert sample["state"] == "serving"
        assert sample["queue_depth"] == 0
        assert sample["nodes_schedulable"] == 3
        assert sample["nodes_draining"] == 0
        assert "virtual_time" in sample
        assert len(sampler) == 1
        assert sampler.document()["taken"] == 1

    def test_ring_is_bounded(self, service):
        sampler = HistorySampler(service, interval=3600, capacity=4)
        for _ in range(9):
            sampler.sample()
        doc = sampler.document()
        assert doc["taken"] == 9
        assert doc["retained"] == 4
        assert len(doc["samples"]) == 4

    def test_http_history_endpoint(self, service, serve_graph):
        server = ServeHTTPServer(service, port=0)
        host, port = server.start()
        base = "http://%s:%d" % (host, port)
        try:
            record = submit(service, "cc")
            assert record.wait(WAIT) is JobState.SUCCEEDED, record.error
            deadline = time.time() + 30
            doc = None
            while time.time() < deadline:
                with urllib.request.urlopen(
                    base + "/stats/history", timeout=30
                ) as response:
                    doc = json.loads(response.read())
                if doc["taken"] >= 3:
                    break
                time.sleep(0.05)
            assert doc["taken"] >= 3
            assert doc["interval_seconds"] == 0.05
            latest = doc["samples"][-1]
            for key in ("ts", "queue_depth", "virtual_time_by_tenant",
                        "nodes_schedulable", "journal_append_seconds"):
                assert key in latest
            with urllib.request.urlopen(
                base + "/stats/history?n=2", timeout=30
            ) as response:
                windowed = json.loads(response.read())
            assert len(windowed["samples"]) <= 2
        finally:
            server.close()

    def test_disabled_history_404s(self, serve_graph):
        service = JobService(num_nodes=2, workers=1, history_interval=None)
        service.add_dataset("g", vertices=serve_graph)
        service.start()
        server = ServeHTTPServer(service, port=0)
        host, port = server.start()
        try:
            assert service.history is None
            request = urllib.request.Request(
                "http://%s:%d/stats/history" % (host, port)
            )
            try:
                urllib.request.urlopen(request, timeout=30)
                raise AssertionError("expected a 404")
            except urllib.error.HTTPError as error:
                assert error.code == 404
                assert json.loads(error.read())["error"]["code"] == "no_history"
        finally:
            server.close()
            service.shutdown(timeout=WAIT)
