"""Autoscaling the serve cluster: policy, ticks, manual scaling, liveness.

The autoscaler is tested tick-by-tick (never via its thread) so every
decision is deterministic: backlog above threshold grows the cluster by
one node per decision up to ``max_nodes``; sustained idleness drains
back down to ``min_nodes``; a cooldown separates consecutive actions.
Manual scaling (``POST /cluster/scale``) is validated against the band,
admission capacity ignores draining nodes, and ``/stats``/``healthz``
surface per-node heartbeat liveness.
"""

import pytest

from repro.serve import JobService, TenantQuota
from repro.serve.autoscale import AutoscalePolicy, Autoscaler

WAIT = 120


class TestPolicy:
    def test_parse(self):
        policy = AutoscalePolicy.parse("2:5")
        assert (policy.min_nodes, policy.max_nodes) == (2, 5)

    @pytest.mark.parametrize("text", ["3", "a:b", "1:2:3", ""])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            AutoscalePolicy.parse(text)

    def test_validates_band(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(0, 3)
        with pytest.raises(ValueError):
            AutoscalePolicy(4, 3)

    def test_to_dict_round_trips_the_band(self):
        policy = AutoscalePolicy(1, 4, up_backlog=0, down_idle_ticks=2)
        doc = policy.to_dict()
        assert doc["min_nodes"] == 1 and doc["max_nodes"] == 4
        assert doc["up_backlog"] == 0 and doc["down_idle_ticks"] == 2


@pytest.fixture
def idle_service():
    """An unstarted service: the queue and executing set stay empty, so
    every autoscaler decision is driven purely by what the test does."""
    service = JobService(num_nodes=2, workers=1)
    yield service
    service.shutdown(drain=False)


def make_scaler(service, **kwargs):
    kwargs.setdefault("up_backlog", 0)
    kwargs.setdefault("down_idle_ticks", 2)
    kwargs.setdefault("cooldown_ticks", 1)
    policy = AutoscalePolicy(kwargs.pop("min_nodes", 2),
                             kwargs.pop("max_nodes", 4), **kwargs)
    scaler = Autoscaler(service, policy)
    service.autoscaler = scaler
    return scaler


class TestTicks:
    def test_backlog_scales_up_one_node_per_decision(self, idle_service):
        scaler = make_scaler(idle_service, cooldown_ticks=0)
        idle_service.queue.push("alice", object())
        assert scaler.tick() == ("up", "node2")
        assert scaler.tick() == ("up", "node3")
        assert scaler.tick() is None  # at max_nodes
        assert len(idle_service.cluster.schedulable_node_ids()) == 4
        assert scaler.scale_ups == 2

    def test_cooldown_separates_decisions(self, idle_service):
        scaler = make_scaler(idle_service, cooldown_ticks=2)
        idle_service.queue.push("alice", object())
        assert scaler.tick() == ("up", "node2")
        assert scaler.tick() is None  # cooling down
        assert scaler.tick() is None
        assert scaler.tick() == ("up", "node3")

    def test_sustained_idle_drains_down_to_min(self, idle_service):
        idle_service.cluster.add_node()  # node2: three schedulable
        scaler = make_scaler(idle_service, min_nodes=1, max_nodes=4,
                             down_idle_ticks=2, cooldown_ticks=0)
        assert scaler.tick() is None  # idle tick 1
        assert scaler.tick() == ("down", "node2")
        assert scaler.tick() is None  # the drain reset the idle streak
        assert scaler.tick() == ("down", "node1")
        # At min_nodes: idleness no longer drains anything.
        assert scaler.tick() is None
        assert scaler.tick() is None
        assert idle_service.cluster.schedulable_node_ids() == ["node0"]
        assert scaler.scale_downs == 2

    def test_backlog_resets_the_idle_streak(self, idle_service):
        scaler = make_scaler(idle_service, min_nodes=1, up_backlog=5,
                             down_idle_ticks=2, cooldown_ticks=0)
        assert scaler.tick() is None  # idle tick 1
        idle_service.queue.push("alice", object())  # activity
        assert scaler.tick() is None  # busy: streak resets
        idle_service.queue.pop(timeout=0)
        assert scaler.tick() is None  # idle tick 1 again
        assert scaler.tick() == ("down", "node1")

    def test_scale_emits_telemetry(self, idle_service):
        scaler = make_scaler(idle_service, cooldown_ticks=0)
        idle_service.queue.push("alice", object())
        scaler.tick()
        events = idle_service.telemetry.events.snapshot(name="serve.scale")
        assert events and events[-1].args["direction"] == "up"
        counter = idle_service.telemetry.registry.counter("serve.scale_up")
        assert counter.value == 1

    def test_state_snapshot(self, idle_service):
        scaler = make_scaler(idle_service)
        state = scaler.state()
        assert state["policy"]["min_nodes"] == 2
        assert state["scale_ups"] == 0 and not state["running"]


class TestManualScale:
    def test_scale_to_within_band(self, idle_service):
        make_scaler(idle_service, min_nodes=1, max_nodes=4)
        doc = idle_service.scale_to(3)
        assert doc["added"] == ["node2"]
        assert doc["schedulable"] == 3

    def test_scale_outside_band_rejected(self, idle_service):
        make_scaler(idle_service, min_nodes=2, max_nodes=4)
        with pytest.raises(ValueError):
            idle_service.scale_to(5)
        with pytest.raises(ValueError):
            idle_service.scale_to(1)

    def test_scale_without_policy_is_unbounded(self, idle_service):
        doc = idle_service.scale_to(5)
        assert doc["schedulable"] == 5

    def test_admission_capacity_tracks_schedulable_nodes(self, idle_service):
        per_node = idle_service.cluster.node_memory_bytes
        assert idle_service.admission.aggregate_capacity() == 2 * per_node
        idle_service.scale_to(4)
        assert idle_service.admission.aggregate_capacity() == 4 * per_node
        # A draining node stops counting immediately, even though it is
        # still alive and serving its pinned partitions.
        idle_service.cluster.register_placement("r", ("node3",))
        idle_service.cluster.drain_node("node3")
        assert idle_service.admission.aggregate_capacity() == 3 * per_node

    def test_virtual_partitions_pinned_at_construction(self, idle_service):
        assert idle_service.cluster.virtual_partitions == 2
        idle_service.scale_to(4)
        assert idle_service.cluster.num_partitions == 2


class TestLivenessSurfacing:
    def test_stats_cluster_section_lists_every_node(self, idle_service):
        doc = idle_service.stats()["cluster"]
        assert [n["node"] for n in doc["nodes"]] == ["node0", "node1"]
        assert all(
            n["alive"] and not n["suspect"] and n["missed_heartbeats"] == 0
            for n in doc["nodes"]
        )
        assert doc["schedulable"] == 2 and doc["epoch"] == 0

    def test_dead_node_becomes_suspect_in_stats(self, idle_service):
        idle_service.cluster.kill_node("node1")
        doc = idle_service.stats()["cluster"]
        node1 = next(n for n in doc["nodes"] if n["node"] == "node1")
        assert node1["suspect"] and node1["missed_heartbeats"] >= 1

    def test_healthz_degrades_without_failing(self, idle_service):
        idle_service.start()
        assert idle_service.health_document()["degraded"] is False
        idle_service.cluster.kill_node("node1")
        doc = idle_service.health_document()
        assert doc["ok"] is True  # still serving on the survivor
        assert doc["degraded"] is True
        assert doc["suspect_nodes"] == ["node1"]
        assert doc["nodes_schedulable"] == 1

    def test_autoscaler_state_in_stats(self, idle_service):
        make_scaler(idle_service)
        doc = idle_service.stats()["cluster"]
        assert doc["autoscaler"]["policy"]["max_nodes"] == 4


class TestServiceIntegration:
    def test_start_clamps_into_band_and_runs_jobs(self, serve_graph,
                                                  reference_results):
        service = JobService(num_nodes=1, workers=2, autoscale="2:4",
                             autoscale_interval=0.05)
        try:
            service.add_dataset("g", vertices=serve_graph)
            service.start()
            # Clamped up to min_nodes before serving.
            assert len(service.cluster.schedulable_node_ids()) == 2
            record = service.submit({
                "tenant": "alice", "algorithm": "cc", "dataset": "g",
            })
            state = record.wait(WAIT)
            assert state is not None and state.value == "succeeded"
            assert sorted(record.result["results"]) == sorted(
                line for line in reference_results["cc"]
            )
        finally:
            service.shutdown(timeout=WAIT)
            assert service.autoscaler.state()["running"] is False
