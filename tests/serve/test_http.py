"""The stdlib HTTP front end: real sockets, real status codes."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import JobService, ServeHTTPServer, TenantQuota

WAIT = 120


@pytest.fixture
def served(serve_graph):
    service = JobService(
        num_nodes=3,
        workers=2,
        quotas={"bob": TenantQuota(memory_fraction=1e-9)},
    )
    service.add_dataset("g", vertices=serve_graph)
    service.start()
    server = ServeHTTPServer(service, port=0)  # ephemeral port
    host, port = server.start()
    yield service, "http://%s:%d" % (host, port)
    server.close()
    service.shutdown(timeout=WAIT)


def http(base, method, path, body=None, raw=None):
    data = raw if raw is not None else (
        json.dumps(body).encode() if body is not None else None
    )
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


class TestEndpoints:
    def test_healthz(self, served):
        _service, base = served
        status, doc, _ = http(base, "GET", "/healthz")
        assert status == 200
        assert doc["ok"] is True and doc["state"] == "serving"
        assert doc["degraded"] is False and doc["suspect_nodes"] == []
        assert doc["nodes_schedulable"] == 3

    def test_submit_poll_result_roundtrip(self, served):
        service, base = served
        status, record, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "alice", "algorithm": "cc", "dataset": "g"},
        )
        assert status == 202
        job_id = record["job_id"]
        assert service.get(job_id).wait(WAIT) is not None
        status, record, _ = http(base, "GET", "/jobs/%s" % job_id)
        assert status == 200
        assert record["state"] == "succeeded"
        status, result, _ = http(base, "GET", "/jobs/%s/result" % job_id)
        assert status == 200
        assert result["job_id"] == job_id
        assert result["algorithm"] == "cc"
        assert len(result["results"]) == 40

    def test_unknown_job_is_404(self, served):
        _service, base = served
        status, doc, _ = http(base, "GET", "/jobs/job-999999")
        assert status == 404
        assert "error" in doc
        status, _doc, _ = http(base, "GET", "/jobs/job-999999/result")
        assert status == 404

    def test_unknown_path_is_404(self, served):
        _service, base = served
        status, _doc, _ = http(base, "GET", "/nope")
        assert status == 404

    def test_malformed_body_is_400(self, served):
        _service, base = served
        status, doc, _ = http(base, "POST", "/jobs", raw=b"{not json")
        assert status == 400
        assert "error" in doc

    def test_missing_fields_are_400(self, served):
        _service, base = served
        status, doc, _ = http(base, "POST", "/jobs", body={"tenant": "a"})
        assert status == 400
        assert "missing required field" in doc["error"]["reason"]

    def test_over_quota_is_429_with_structured_body(self, served):
        _service, base = served
        status, doc, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "bob", "algorithm": "cc", "dataset": "g",
                  "use_cache": False},
        )
        assert status == 429
        rejection = doc["error"]
        assert rejection["code"] == "over_memory"
        assert rejection["details"]["allowed_bytes"] == 0

    def test_unknown_algorithm_is_400(self, served):
        _service, base = served
        status, doc, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "alice", "algorithm": "quicksort", "dataset": "g"},
        )
        assert status == 400
        assert doc["error"]["code"] == "unknown_algorithm"

    def test_jobs_listing_and_stats(self, served):
        service, base = served
        _status, record, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "alice", "algorithm": "cc", "dataset": "g"},
        )
        service.get(record["job_id"]).wait(WAIT)
        status, listing, _ = http(base, "GET", "/jobs")
        assert status == 200
        assert any(job["job_id"] == record["job_id"] for job in listing["jobs"])
        status, stats, _ = http(base, "GET", "/stats")
        assert status == 200
        assert stats["jobs"]["succeeded"] >= 1
        assert stats["datasets"]["g"]["files"] == 3

    def test_cluster_scale_endpoint(self, served):
        _service, base = served
        status, doc, _ = http(base, "POST", "/cluster/scale", body={"nodes": 4})
        assert status == 200
        assert doc["added"] == ["node3"] and doc["schedulable"] == 4
        status, stats, _ = http(base, "GET", "/stats")
        assert stats["cluster"]["schedulable"] == 4
        assert [n["node"] for n in stats["cluster"]["nodes"]] == [
            "node0", "node1", "node2", "node3",
        ]
        status, doc, _ = http(base, "POST", "/cluster/scale", body={"nodes": 3})
        assert status == 200 and doc["draining"] == ["node3"]

    def test_cluster_scale_rejects_bad_bodies(self, served):
        _service, base = served
        status, doc, _ = http(base, "POST", "/cluster/scale", body={"nodes": "x"})
        assert status == 400 and doc["error"]["code"] == "bad_request"
        status, doc, _ = http(base, "POST", "/cluster/scale", body={"nodes": 0})
        assert status == 400 and doc["error"]["code"] == "bad_scale"

    def test_result_of_cached_repeat(self, served):
        service, base = served
        _status, first, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "alice", "algorithm": "cc", "dataset": "g"},
        )
        service.get(first["job_id"]).wait(WAIT)
        status, repeat, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "alice", "algorithm": "cc", "dataset": "g"},
        )
        assert status == 202
        assert repeat["cache_hit"] is True
        assert repeat["state"] == "succeeded"
        status, result, _ = http(
            base, "GET", "/jobs/%s/result" % repeat["job_id"]
        )
        assert status == 200
        assert result["cache_hit"] is True
