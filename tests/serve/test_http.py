"""The stdlib HTTP front end: real sockets, real status codes."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import JobService, JobState, ServeHTTPServer, TenantQuota

WAIT = 120


@pytest.fixture
def served(serve_graph):
    service = JobService(
        num_nodes=3,
        workers=2,
        quotas={"bob": TenantQuota(memory_fraction=1e-9)},
    )
    service.add_dataset("g", vertices=serve_graph)
    service.start()
    server = ServeHTTPServer(service, port=0)  # ephemeral port
    host, port = server.start()
    yield service, "http://%s:%d" % (host, port)
    server.close()
    service.shutdown(timeout=WAIT)


def http(base, method, path, body=None, raw=None):
    data = raw if raw is not None else (
        json.dumps(body).encode() if body is not None else None
    )
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


class TestEndpoints:
    def test_healthz(self, served):
        _service, base = served
        status, doc, _ = http(base, "GET", "/healthz")
        assert status == 200
        assert doc["ok"] is True and doc["state"] == "serving"
        assert doc["degraded"] is False and doc["suspect_nodes"] == []
        assert doc["nodes_schedulable"] == 3

    def test_submit_poll_result_roundtrip(self, served):
        service, base = served
        status, record, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "alice", "algorithm": "cc", "dataset": "g"},
        )
        assert status == 202
        job_id = record["job_id"]
        assert service.get(job_id).wait(WAIT) is not None
        status, record, _ = http(base, "GET", "/jobs/%s" % job_id)
        assert status == 200
        assert record["state"] == "succeeded"
        status, result, _ = http(base, "GET", "/jobs/%s/result" % job_id)
        assert status == 200
        assert result["job_id"] == job_id
        assert result["algorithm"] == "cc"
        assert len(result["results"]) == 40

    def test_unknown_job_is_404(self, served):
        _service, base = served
        status, doc, _ = http(base, "GET", "/jobs/job-999999")
        assert status == 404
        assert "error" in doc
        status, _doc, _ = http(base, "GET", "/jobs/job-999999/result")
        assert status == 404

    def test_unknown_path_is_404(self, served):
        _service, base = served
        status, _doc, _ = http(base, "GET", "/nope")
        assert status == 404

    def test_malformed_body_is_400(self, served):
        _service, base = served
        status, doc, _ = http(base, "POST", "/jobs", raw=b"{not json")
        assert status == 400
        assert "error" in doc

    def test_missing_fields_are_400(self, served):
        _service, base = served
        status, doc, _ = http(base, "POST", "/jobs", body={"tenant": "a"})
        assert status == 400
        assert "missing required field" in doc["error"]["reason"]

    def test_over_quota_is_429_with_structured_body(self, served):
        _service, base = served
        status, doc, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "bob", "algorithm": "cc", "dataset": "g",
                  "use_cache": False},
        )
        assert status == 429
        rejection = doc["error"]
        assert rejection["code"] == "over_memory"
        assert rejection["details"]["allowed_bytes"] == 0

    def test_unknown_algorithm_is_400(self, served):
        _service, base = served
        status, doc, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "alice", "algorithm": "quicksort", "dataset": "g"},
        )
        assert status == 400
        assert doc["error"]["code"] == "unknown_algorithm"

    def test_jobs_listing_and_stats(self, served):
        service, base = served
        _status, record, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "alice", "algorithm": "cc", "dataset": "g"},
        )
        service.get(record["job_id"]).wait(WAIT)
        status, listing, _ = http(base, "GET", "/jobs")
        assert status == 200
        assert any(job["job_id"] == record["job_id"] for job in listing["jobs"])
        status, stats, _ = http(base, "GET", "/stats")
        assert status == 200
        assert stats["jobs"]["succeeded"] >= 1
        assert stats["datasets"]["g"]["files"] == 3

    def test_cluster_scale_endpoint(self, served):
        _service, base = served
        status, doc, _ = http(base, "POST", "/cluster/scale", body={"nodes": 4})
        assert status == 200
        assert doc["added"] == ["node3"] and doc["schedulable"] == 4
        status, stats, _ = http(base, "GET", "/stats")
        assert stats["cluster"]["schedulable"] == 4
        assert [n["node"] for n in stats["cluster"]["nodes"]] == [
            "node0", "node1", "node2", "node3",
        ]
        status, doc, _ = http(base, "POST", "/cluster/scale", body={"nodes": 3})
        assert status == 200 and doc["draining"] == ["node3"]

    def test_cluster_scale_rejects_bad_bodies(self, served):
        _service, base = served
        status, doc, _ = http(base, "POST", "/cluster/scale", body={"nodes": "x"})
        assert status == 400 and doc["error"]["code"] == "bad_request"
        status, doc, _ = http(base, "POST", "/cluster/scale", body={"nodes": 0})
        assert status == 400 and doc["error"]["code"] == "bad_scale"

    def test_result_of_cached_repeat(self, served):
        service, base = served
        _status, first, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "alice", "algorithm": "cc", "dataset": "g"},
        )
        service.get(first["job_id"]).wait(WAIT)
        status, repeat, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "alice", "algorithm": "cc", "dataset": "g"},
        )
        assert status == 202
        assert repeat["cache_hit"] is True
        assert repeat["state"] == "succeeded"
        status, result, _ = http(
            base, "GET", "/jobs/%s/result" % repeat["job_id"]
        )
        assert status == 200
        assert result["cache_hit"] is True


class TestCancelRace:
    """A cancel racing a completion answers deterministically."""

    def test_cancel_queued_job_is_200(self, served):
        service, base = served
        release = threading.Event()
        original = service._run_once
        service._run_once = lambda record, dataset: release.wait(WAIT)
        try:
            # Two blocked jobs fill both workers; the third stays queued.
            blockers = [
                service.submit({"tenant": "alice", "algorithm": "cc",
                                "dataset": "g", "use_cache": False,
                                "params": {}})
                for _ in range(2)
            ]
            deadline = time.monotonic() + WAIT
            while (
                any(r.state is not JobState.RUNNING for r in blockers)
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            _status, queued, _ = http(
                base, "POST", "/jobs",
                body={"tenant": "alice", "algorithm": "pagerank",
                      "dataset": "g", "use_cache": False},
            )
            status, outcome, _ = http(
                base, "POST", "/jobs/%s/cancel" % queued["job_id"]
            )
            assert status == 200
            assert outcome["status"] == "cancelled"
            assert outcome["cancelled"] is True
        finally:
            release.set()
            service._run_once = original
        for record in blockers:
            record.wait(WAIT)

    def test_cancel_running_job_is_202_cancelling(self, served):
        service, base = served
        release = threading.Event()
        original = service._run_once
        service._run_once = lambda record, dataset: release.wait(WAIT)
        try:
            record = service.submit({"tenant": "alice", "algorithm": "cc",
                                     "dataset": "g", "use_cache": False})
            deadline = time.monotonic() + WAIT
            while (record.state is not JobState.RUNNING
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            status, outcome, _ = http(
                base, "POST", "/jobs/%s/cancel" % record.job_id
            )
            assert status == 202
            assert outcome["status"] == "cancelling"
            assert outcome["state"] == "running"
            assert outcome["cancelled"] is False
        finally:
            release.set()
            service._run_once = original
        record.wait(WAIT)

    def test_cancel_after_completion_is_409_with_the_winner(self, served):
        service, base = served
        _status, record, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "alice", "algorithm": "cc", "dataset": "g"},
        )
        assert service.get(record["job_id"]).wait(WAIT) is JobState.SUCCEEDED
        status, outcome, _ = http(
            base, "POST", "/jobs/%s/cancel" % record["job_id"]
        )
        assert status == 409
        assert outcome["status"] == "terminal"
        assert outcome["state"] == "succeeded"
        assert outcome["cancelled"] is False
        # The job's record is untouched by the losing cancel.
        assert service.get(record["job_id"]).state is JobState.SUCCEEDED

    def test_cancel_unknown_job_is_404(self, served):
        _service, base = served
        status, doc, _ = http(base, "POST", "/jobs/job-999999/cancel")
        assert status == 404
        assert doc["error"]["code"] == "not_found"


class TestOverloadAndQuarantine:
    def test_shedding_is_503_with_retry_after(self, serve_graph):
        service = JobService(num_nodes=2, workers=1, shed_queue_depth=0)
        service.add_dataset("g", vertices=serve_graph)
        service.start()
        server = ServeHTTPServer(service, port=0)
        host, port = server.start()
        try:
            status, doc, headers = http(
                "http://%s:%d" % (host, port), "POST", "/jobs",
                body={"tenant": "alice", "algorithm": "cc", "dataset": "g"},
            )
            assert status == 503
            assert doc["error"]["code"] == "overloaded"
            assert headers["Retry-After"] == "1"
            assert service.stats()["shed"] == 1
        finally:
            server.close()
            service.shutdown(timeout=WAIT)

    def test_quarantined_request_is_403(self, served):
        service, base = served
        request = {"tenant": "alice", "algorithm": "cc", "dataset": "g"}
        from repro.serve import JobRequest

        key = JobRequest.from_dict(request).poison_key()
        with service._lock:
            service._quarantine[key] = {
                "algorithm": "cc", "dataset": "g", "params_key": "{}",
                "strikes": 2, "last_error": "wedged",
                "job_id": "job-000001",
            }
        status, doc, _ = http(base, "POST", "/jobs", body=request)
        assert status == 403
        assert doc["error"]["code"] == "quarantined"
        assert doc["error"]["details"]["strikes"] == 2
        service.clear_quarantine(key)
        status, _doc, _ = http(base, "POST", "/jobs", body=request)
        assert status == 202


class TestDeadlineOverHTTP:
    def test_timed_out_result_is_410_with_retry_after(self, served):
        service, base = served
        status, record, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "alice", "algorithm": "pagerank", "dataset": "g",
                  "params": {"iterations": 60}, "use_cache": False,
                  "deadline_seconds": 0.02},
        )
        assert status == 202
        assert record["deadline_seconds"] == 0.02
        job_id = record["job_id"]
        assert service.get(job_id).wait(WAIT) is JobState.FAILED
        status, doc, headers = http(base, "GET", "/jobs/%s/result" % job_id)
        assert status == 410
        assert doc["error"]["details"]["error_kind"] == "timeout"
        assert headers["Retry-After"] == "1"
        status, record, _ = http(base, "GET", "/jobs/%s" % job_id)
        assert record["state"] == "failed"
        assert record["error_kind"] == "timeout"

    def test_bad_deadline_is_400(self, served):
        _service, base = served
        status, doc, _ = http(
            base, "POST", "/jobs",
            body={"tenant": "alice", "algorithm": "cc", "dataset": "g",
                  "deadline_seconds": -3},
        )
        assert status == 400
        assert "deadline_seconds" in doc["error"]["reason"]
