"""Shared serve-test fixtures: a small graph and direct-driver references."""

import importlib

import pytest

from repro.graphs.generators import btc_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver
from repro.serve.api import SERVABLE_ALGORITHMS

#: (algorithm, request params) workloads the serve tests submit.
WORKLOADS = {
    "pagerank": {"iterations": 5},
    "sssp": {"source_id": 0},
    "cc": {},
}


@pytest.fixture(scope="session")
def serve_graph():
    return list(btc_graph(40, seed=3))


def run_direct(vertices, algorithm, params, num_nodes=3):
    """One-shot driver run on a private cluster; returns sorted lines."""
    module = importlib.import_module(SERVABLE_ALGORITHMS[algorithm][0])
    cluster = HyracksCluster(num_nodes=num_nodes)
    try:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(dfs, "/in/g", iter(vertices), num_files=num_nodes)
        driver = PregelixDriver(cluster, dfs)
        driver.run(
            module.build_job(**params),
            "/in/g",
            output_path="/out/r",
            parse_line=getattr(module, "parse_line", None),
            format_record=getattr(module, "format_record", None),
        )
        return sorted(driver.read_output("/out/r"))
    finally:
        cluster.close()


@pytest.fixture(scope="session")
def reference_results(serve_graph):
    """Sequential direct-driver output per workload: the bit-identity bar."""
    return {
        algorithm: run_direct(serve_graph, algorithm, params)
        for algorithm, params in WORKLOADS.items()
    }
