"""Admission control: structured rejects, queue-vs-admit, quota parsing."""

import pytest

from repro.hyracks.engine import HyracksCluster
from repro.serve.admission import (
    ADMIT,
    QUEUE,
    REJECT,
    AdmissionController,
    TenantQuota,
    estimate_job_bytes,
)
from repro.serve.api import (
    REJECT_OVER_MEMORY,
    REJECT_QUEUE_FULL,
    JobRequest,
)

NODE_BYTES = 1 << 20  # 1 MiB per node


@pytest.fixture
def cluster():
    cluster = HyracksCluster(num_nodes=2, node_memory_bytes=NODE_BYTES)
    yield cluster
    cluster.close()


def request(tenant="alice"):
    return JobRequest(tenant=tenant, algorithm="cc", dataset="g")


class TestQuotaParse:
    def test_weight_only(self):
        assert TenantQuota.parse("2.5") == TenantQuota(weight=2.5)

    def test_all_fields(self):
        assert TenantQuota.parse("2:1:5:0.5") == TenantQuota(
            weight=2.0, max_running=1, max_queued=5, memory_fraction=0.5
        )

    def test_empty_positions_keep_defaults(self):
        quota = TenantQuota.parse("::8")
        assert quota.weight == 1.0
        assert quota.max_running == 4
        assert quota.max_queued == 8

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            TenantQuota.parse("fast")


class TestDecide:
    def test_fitting_job_is_admitted(self, cluster):
        controller = AdmissionController(cluster)
        decision = controller.decide(request(), dataset_bytes=1000)
        assert decision.action == ADMIT
        assert decision.admitted
        assert decision.estimated_bytes == estimate_job_bytes(1000)

    def test_impossible_job_is_rejected_structurally(self, cluster):
        controller = AdmissionController(cluster)
        decision = controller.decide(request(), dataset_bytes=10 * NODE_BYTES)
        assert decision.action == REJECT
        assert not decision.admitted
        rejection = decision.rejection
        assert rejection.code == REJECT_OVER_MEMORY
        details = rejection.details
        assert details["aggregate_memory_bytes"] == 2 * NODE_BYTES
        assert details["estimated_bytes"] > details["allowed_bytes"]
        assert details["dataset_bytes"] == 10 * NODE_BYTES

    def test_tenant_memory_fraction_caps_one_job(self, cluster):
        controller = AdmissionController(
            cluster, quotas={"bob": TenantQuota(memory_fraction=0.01)}
        )
        # Fits the cluster easily, but not bob's 1% share.
        decision = controller.decide(request("bob"), dataset_bytes=NODE_BYTES // 8)
        assert decision.action == REJECT
        assert decision.rejection.code == REJECT_OVER_MEMORY
        # The same job sails through for a default tenant.
        assert controller.decide(request(), dataset_bytes=NODE_BYTES // 8).admitted

    def test_full_tenant_queue_rejects(self, cluster):
        controller = AdmissionController(
            cluster, quotas={"alice": TenantQuota(max_queued=2)}
        )
        decision = controller.decide(request(), dataset_bytes=100, queued_by_tenant=2)
        assert decision.action == REJECT
        assert decision.rejection.code == REJECT_QUEUE_FULL
        assert decision.rejection.details == {"queued": 2, "max_queued": 2}

    def test_running_cap_queues_not_rejects(self, cluster):
        controller = AdmissionController(
            cluster, quotas={"alice": TenantQuota(max_running=1)}
        )
        decision = controller.decide(request(), dataset_bytes=100, running_by_tenant=1)
        assert decision.action == QUEUE
        assert decision.admitted
        assert decision.rejection is None

    def test_busy_cluster_queues_not_rejects(self, cluster):
        controller = AdmissionController(cluster)
        decision = controller.decide(
            request(),
            dataset_bytes=NODE_BYTES // 2,  # fits an idle cluster
            running_estimated_bytes=2 * NODE_BYTES - 1000,  # but not this one
        )
        assert decision.action == QUEUE
        assert decision.admitted

    def test_dead_nodes_shrink_capacity(self, cluster):
        controller = AdmissionController(cluster)
        full = controller.aggregate_capacity()
        next(iter(cluster.nodes.values())).alive = False
        assert controller.aggregate_capacity() == full // 2


class TestEstimate:
    def test_working_set_factor(self):
        assert estimate_job_bytes(1000) == 2000
        assert estimate_job_bytes(1000, groupby_memory_bytes=500) == 2500
