"""Restart recovery: a crashed service's journal replays into live state."""

import pytest

from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.serve import JobService, JobState, ServiceCrashed
from repro.serve.journal import RECORD_SUBMITTED

WAIT = 120
JOURNAL = "dfs:/serve/journal.wal"


@pytest.fixture
def harness(serve_graph):
    cluster = HyracksCluster(num_nodes=3)
    dfs = MiniDFS(datanodes=cluster.node_ids())

    def make_service(**overrides):
        """One 'process start' over the shared cluster/DFS/journal."""
        kwargs = dict(
            cluster=cluster, dfs=dfs, workers=1, journal=JOURNAL,
            checkpoint_interval=1, watchdog=False,
        )
        kwargs.update(overrides)
        service = JobService(**kwargs)
        service.add_dataset("g", vertices=list(serve_graph))
        return service

    yield cluster, dfs, make_service
    cluster.close()


REQUEST = {
    "tenant": "alice", "algorithm": "pagerank", "dataset": "g",
    "params": {"iterations": 4},
}


def crash(cluster, dfs, make_service, phase, at_hit=1):
    """Run one service until the injected crash at ``phase`` fires."""
    import time

    plan = FaultPlan([
        FaultSpec(site="service.crash", action="io", node=phase,
                  at_hit=at_hit, min_superstep=0),
    ])
    injector = FaultInjector(plan).attach(cluster, dfs=dfs)
    service = make_service()
    service.start()
    try:
        service.submit(dict(REQUEST))
    except ServiceCrashed:
        pass  # crash at the "queued" phase kills the submitting thread
    deadline = time.monotonic() + WAIT
    while service._state != "crashed" and time.monotonic() < deadline:
        time.sleep(0.02)
    assert service._state == "crashed", "crash never fired at %r" % phase
    injector.detach()
    return service


class TestCrashRecovery:
    @pytest.mark.parametrize(
        "phase,at_hit,expect",
        [("queued", 1, "requeued"), ("running", 2, "resumed"),
         ("finishing", 1, "resumed")],
    )
    def test_crash_then_restart_completes_bit_identical(
        self, harness, phase, at_hit, expect
    ):
        cluster, dfs, make_service = harness
        crash(cluster, dfs, make_service, phase, at_hit)

        second = make_service()
        summary = second.recover()
        assert summary["jobs"] == 1
        assert summary[expect] == 1
        assert summary["finished"] == 0
        second.start()
        (record,) = second.jobs.values()
        assert record.recovered is True
        assert record.wait(WAIT) is JobState.SUCCEEDED

        # Bit-identity bar: an uninterrupted run of the same request.
        rerun = second.submit(dict(REQUEST, use_cache=False))
        assert rerun.wait(WAIT) is JobState.SUCCEEDED
        assert record.result_digest == rerun.result_digest
        assert record.result_digest is not None
        second.shutdown(drain=True, timeout=WAIT)

    def test_crashed_service_refuses_restart_in_place(self, harness):
        cluster, dfs, make_service = harness
        service = crash(cluster, dfs, make_service, "running")
        from repro.common.errors import ReproError

        with pytest.raises(ReproError, match="fresh JobService"):
            service.start()
        assert service.drain(timeout=1) is False

    def test_resumed_job_pins_the_journaled_plan(self, harness):
        cluster, dfs, make_service = harness
        crash(cluster, dfs, make_service, "running", at_hit=2)
        second = make_service()
        second.recover()
        (record,) = second.jobs.values()
        # The interrupted run's resolved plan came back from the WAL so
        # the resume rebuilds the identical physical plan.
        assert record.plan_signature is not None
        assert record.resume_run_id is not None
        second.start()
        assert record.wait(WAIT) is JobState.SUCCEEDED
        second.shutdown(drain=True, timeout=WAIT)


class TestFinishedJobs:
    def test_finished_job_never_reexecuted(self, harness):
        cluster, _dfs, make_service = harness
        first = make_service()
        first.start()
        record = first.submit(dict(REQUEST))
        assert record.wait(WAIT) is JobState.SUCCEEDED
        digest = record.result_digest
        first.shutdown(drain=True, timeout=WAIT)

        executed = cluster.jobs_executed
        second = make_service()
        summary = second.recover()
        assert summary["finished"] == 1
        second.start()
        recovered = second.get(record.job_id)
        assert recovered.state is JobState.SUCCEEDED
        assert recovered.result_digest == digest
        assert recovered.result is not None

        # The replayed result re-seeded the cache: a re-submission is a
        # hit and the cluster never executes the job again.
        repeat = second.submit(dict(REQUEST))
        assert repeat.cache_hit is True
        assert repeat.state is JobState.SUCCEEDED
        assert cluster.jobs_executed == executed
        second.shutdown(drain=True, timeout=WAIT)

    def test_failed_job_stays_failed(self, harness):
        _cluster, _dfs, make_service = harness
        first = make_service()
        first.start()
        record = first.submit(dict(
            REQUEST, params={"iterations": 40}, deadline_seconds=0.01,
            use_cache=False,
        ))
        assert record.wait(WAIT) is JobState.FAILED
        first.shutdown(drain=True, timeout=WAIT)

        second = make_service()
        summary = second.recover()
        assert summary["finished"] == 1
        recovered = second.get(record.job_id)
        assert recovered.state is JobState.FAILED
        assert recovered.error_kind == "timeout"
        second.shutdown(drain=False)


class TestReplayBookkeeping:
    def test_job_ids_advance_past_journaled_ids(self, harness):
        _cluster, _dfs, make_service = harness
        first = make_service()
        first.start()
        record = first.submit(dict(REQUEST))
        assert record.wait(WAIT) is JobState.SUCCEEDED
        first.shutdown(drain=True, timeout=WAIT)

        second = make_service()
        second.recover()
        second.start()
        fresh = second.submit(dict(REQUEST, use_cache=False))
        assert fresh.job_id != record.job_id
        assert int(fresh.job_id.rsplit("-", 1)[1]) > int(
            record.job_id.rsplit("-", 1)[1]
        )
        second.shutdown(drain=True, timeout=WAIT)

    def test_unparseable_submission_is_skipped_not_fatal(self, harness):
        _cluster, _dfs, make_service = harness
        first = make_service()
        first.journal.append(RECORD_SUBMITTED, "job-090909",
                             request={"bogus": True})
        summary = first.recover()
        assert summary["skipped"] == 1
        assert "job-090909" not in first.jobs
        first.shutdown(drain=False)

    def test_torn_tail_reported_in_recover_summary(self, harness):
        _cluster, _dfs, make_service = harness
        first = make_service()
        first.start()
        record = first.submit(dict(REQUEST))
        assert record.wait(WAIT) is JobState.SUCCEEDED
        first.shutdown(drain=True, timeout=WAIT)
        # Tear mid-way into the final (finished) record: the classic
        # crash-during-append shape.
        storage = first.journal.storage
        storage.damage_tear(storage.size() - 8)

        second = make_service()
        summary = second.recover()
        assert summary["torn_bytes"] > 0
        # The finished record was the casualty: the job replays as
        # interrupted and runs to the same digest.
        assert summary["finished"] == 0
        assert summary["resumed"] + summary["requeued"] == 1
        second.start()
        recovered = second.get(record.job_id)
        assert recovered.wait(WAIT) is JobState.SUCCEEDED
        assert recovered.result_digest == record.result_digest
        second.shutdown(drain=True, timeout=WAIT)
