"""Fair-share queue: FIFO within tenant, weighted across, aging, close."""

import threading

import pytest

from repro.serve.queue import FairShareQueue


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestFifoWithinTenant:
    def test_one_tenant_is_fifo(self):
        queue = FairShareQueue()
        for item in range(5):
            queue.push("a", item)
        assert [queue.pop(timeout=0) for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_pop_empty_times_out(self):
        assert FairShareQueue().pop(timeout=0.01) is None


class TestWeightedShare:
    def test_equal_weights_alternate(self):
        queue = FairShareQueue()
        for item in range(4):
            queue.push("a", ("a", item))
            queue.push("b", ("b", item))
        tenants = [queue.pop(timeout=0)[0] for _ in range(8)]
        assert tenants == ["a", "b", "a", "b", "a", "b", "a", "b"]

    def test_three_to_one_weights(self):
        queue = FairShareQueue()
        queue.set_weight("a", 3.0)
        queue.set_weight("b", 1.0)
        for item in range(8):
            queue.push("a", ("a", item))
            queue.push("b", ("b", item))
        tenants = [queue.pop(timeout=0)[0] for _ in range(8)]
        # Stride scheduling: every 1000-pass window serves a 3x.
        assert tenants == ["a", "b", "a", "a", "a", "b", "a", "a"]
        assert tenants.count("a") == 3 * tenants.count("b")

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            FairShareQueue().set_weight("a", 0)

    def test_idle_reentry_banks_no_credit(self):
        """A tenant returning from idle may not burst ahead of the busy one."""
        queue = FairShareQueue()
        queue.push("a", "a0")
        queue.push("b", "b0")
        assert queue.pop(timeout=0) == "a0"
        assert queue.pop(timeout=0) == "b0"
        # b stays busy for a while; a sleeps.
        for item in range(4):
            queue.push("b", "b%d" % (item + 1))
        for _ in range(4):
            queue.pop(timeout=0)
        # a returns: it re-enters at b's pass, so service alternates
        # instead of a draining its backlog first.
        for item in range(3):
            queue.push("a", ("a", item))
            queue.push("b", ("b", item))
        tenants = [queue.pop(timeout=0)[0] for _ in range(6)]
        assert tenants == ["a", "b", "a", "b", "a", "b"]


class TestAging:
    def _tied_queue(self, aging_rate, clock):
        """Both tenants at pass 1000; z's head has waited 50s, a's 0s."""
        queue = FairShareQueue(aging_rate=aging_rate, clock=clock)
        queue.push("a", "a0")
        queue.push("z", "z0")
        queue.push("z", "z1")
        assert queue.pop(timeout=0) == "a0"
        assert queue.pop(timeout=0) == "z0"
        clock.advance(50.0)
        queue.push("a", "a1")
        return queue

    def test_without_aging_ties_break_by_name(self):
        queue = self._tied_queue(aging_rate=0.0, clock=FakeClock())
        assert queue.pop(timeout=0) == "a1"

    def test_aging_prefers_the_longest_waiting_head(self):
        # z1 has waited 50s: its effective pass drops by 500, beating
        # the name tie-break that would otherwise pick 'a'.
        queue = self._tied_queue(aging_rate=10.0, clock=FakeClock())
        assert queue.pop(timeout=0) == "z1"

    def _pops_until_lightweight_served(self, aging_rate):
        """Dispatches until 'z1' (weight 0.01, pass 100000) is served
        against a continuously churning weight-1.0 tenant whose head is
        always fresh."""
        clock = FakeClock()
        queue = FairShareQueue(aging_rate=aging_rate, clock=clock)
        queue.set_weight("zeta", 0.01)  # stride 100000
        queue.push("zeta", "z0")
        queue.push("alpha", "a0")
        queue.push("alpha", "a1")
        assert queue.pop(timeout=0) == "a0"  # name tie-break
        assert queue.pop(timeout=0) == "z0"  # zeta's pass -> 100000
        queue.push("zeta", "z1")
        for attempt in range(1, 250):
            clock.advance(1.0)
            queue.push("alpha", "a%d" % (attempt + 1))
            if queue.pop(timeout=0) == "z1":
                return attempt
        raise AssertionError("z1 was never served")

    def test_aging_forgives_the_pass_gap_over_time(self):
        # Without aging zeta waits out the full 100000-pass gap at
        # 1000/dispatch; with aging the gap is also forgiven at 1000/s
        # of head wait, roughly halving the starvation window.
        unaged = self._pops_until_lightweight_served(aging_rate=0.0)
        aged = self._pops_until_lightweight_served(aging_rate=1000.0)
        assert aged < unaged
        assert aged <= 60


class TestRemoveAndDepth:
    def test_remove_by_predicate(self):
        queue = FairShareQueue()
        for item in range(4):
            queue.push("a", item)
        removed = queue.remove(lambda item: item % 2 == 0)
        assert removed == [0, 2]
        assert len(queue) == 2
        assert [queue.pop(timeout=0) for _ in range(2)] == [1, 3]

    def test_depth_by_tenant(self):
        queue = FairShareQueue()
        queue.push("a", 1)
        queue.push("a", 2)
        queue.push("b", 3)
        assert queue.depth("a") == 2
        assert queue.depth("b") == 1
        assert queue.depth("c") == 0
        assert queue.depth_by_tenant() == {"a": 2, "b": 1}
        assert len(queue) == 3


class TestClose:
    def test_close_wakes_blocked_pop(self):
        queue = FairShareQueue()
        results = []
        thread = threading.Thread(target=lambda: results.append(queue.pop()))
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results == [None]

    def test_push_after_close_rejected(self):
        queue = FairShareQueue()
        queue.close()
        with pytest.raises(RuntimeError):
            queue.push("a", 1)

    def test_pop_after_close_drains_nothing(self):
        queue = FairShareQueue()
        queue.close()
        assert queue.pop(timeout=0) is None
