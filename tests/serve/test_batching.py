"""Batched point queries in the serve layer (DESIGN.md §17).

Covers batch formation, per-member result fan-out (digests identical to
solo runs), result/plan cache seeding under batched completion,
``ResultCache.invalidate``, journal ``batch`` markers, and mid-batch
crash recovery (never a half-batch).
"""

import time

import pytest

from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.serve import JobService, JobState, ServiceCrashed
from repro.serve.batching import BATCHABLE_ALGORITHMS, BatchFormer
from repro.serve.journal import RECORD_STARTED

WAIT = 120
SOURCES = (0, 3, 7, 11)


def _submit_sssp(service, sources, tenant_of=lambda s: "alice", **extra):
    records = []
    for source in sources:
        body = {
            "tenant": tenant_of(source), "algorithm": "sssp", "dataset": "g",
            "params": {"source_id": source},
        }
        body.update(extra)
        records.append(service.submit(body))
    return records


@pytest.fixture(scope="module")
def solo_digests(serve_graph):
    """Unbatched-service digests per source: the fan-out equivalence bar."""
    service = JobService(num_nodes=3, workers=1, watchdog=False)
    service.add_dataset("g", vertices=list(serve_graph))
    service.start()
    try:
        digests = {}
        for source in SOURCES:
            record = _submit_sssp(service, [source])[0]
            assert record.wait(WAIT) is JobState.SUCCEEDED, record.error
            digests[source] = record.result_digest
        return digests
    finally:
        service.shutdown(timeout=WAIT)


@pytest.fixture
def batched_service(serve_graph):
    service = JobService(
        num_nodes=3, workers=1, watchdog=False,
        batch_max=8, batch_window=0.4,
    )
    service.add_dataset("g", vertices=list(serve_graph))
    service.start()
    yield service
    service.shutdown(timeout=WAIT)


class TestBatchedCompletion:
    def test_batch_fans_out_solo_identical_results_and_seeds_caches(
        self, batched_service, solo_digests
    ):
        service = batched_service
        records = _submit_sssp(
            service, SOURCES,
            tenant_of=lambda s: "alice" if s % 2 == 0 else "bob",
        )
        for record, source in zip(records, SOURCES):
            assert record.wait(WAIT) is JobState.SUCCEEDED, record.error
            assert record.result_digest == solo_digests[source], (
                "batched lane for source %d diverged from solo" % source
            )
        stats = service.stats()
        assert stats["batch"]["formed"] >= 1
        assert stats["batch"]["batched_jobs"] >= 2
        batched = [r for r in records if r.result.get("batch")]
        assert len(batched) >= 2, "no jobs actually shared a run"
        shared = batched[0].result["batch"]["run_id"]
        assert all(r.result["batch"]["run_id"] == shared for r in batched)

        # a batch of N seeds N result-cache entries...
        assert stats["result_cache"]["entries"] == len(SOURCES)
        # ...and the plan cache learned the proven plan once
        dataset = service.datasets["g"]
        assert service.plan_cache.lookup(dataset.digest, "sssp") is not None

        # an identical later query is a cache hit, never touching the cluster
        executed_before = service.cluster.jobs_executed
        hits_before = service.telemetry.registry.counter(
            "serve.cache_hit"
        ).value
        repeat = _submit_sssp(service, [SOURCES[1]],
                              tenant_of=lambda s: "carol")[0]
        assert repeat.wait(WAIT) is JobState.SUCCEEDED
        assert repeat.cache_hit
        assert repeat.result_digest == solo_digests[SOURCES[1]]
        assert service.cluster.jobs_executed == executed_before
        assert service.telemetry.registry.counter(
            "serve.cache_hit"
        ).value > hits_before

    def test_result_cache_invalidate_forces_reexecution(
        self, batched_service, solo_digests
    ):
        service = batched_service
        records = _submit_sssp(service, SOURCES)
        for record in records:
            assert record.wait(WAIT) is JobState.SUCCEEDED, record.error
        dataset = service.datasets["g"]
        assert len(service.result_cache) == len(SOURCES)
        # drop exactly this dataset's entries by key predicate
        removed = service.result_cache.invalidate(
            lambda key: key[0] == dataset.digest
        )
        assert removed == len(SOURCES)
        assert len(service.result_cache) == 0
        executed_before = service.cluster.jobs_executed
        repeat = _submit_sssp(service, [SOURCES[0]])[0]
        assert repeat.wait(WAIT) is JobState.SUCCEEDED
        assert not repeat.cache_hit
        assert repeat.result_digest == solo_digests[SOURCES[0]]
        assert service.cluster.jobs_executed > executed_before

    def test_unbatchable_algorithms_run_solo(self, batched_service):
        assert "pagerank" not in BATCHABLE_ALGORITHMS
        service = batched_service
        records = [
            service.submit({
                "tenant": "alice", "algorithm": "pagerank", "dataset": "g",
                "params": {"iterations": 3}, "use_cache": False,
            })
            for _ in range(2)
        ]
        for record in records:
            assert record.wait(WAIT) is JobState.SUCCEEDED, record.error
        assert service.stats()["batch"]["formed"] == 0
        assert all(not r.result.get("batch") for r in records)


class TestBatchFormerUnits:
    def test_merged_estimate_charges_lanes_not_copies(self):
        class Stub:
            def __init__(self, estimated_bytes):
                self.estimated_bytes = estimated_bytes

        former = BatchFormer(service=None, batch_max=8, lane_growth=0.25)
        assert former.merged_estimate([]) == 0
        assert former.merged_estimate([Stub(1000)]) == 1000
        # base = max; each extra lane adds lane_growth of its own estimate
        assert former.merged_estimate(
            [Stub(1000), Stub(800), Stub(400)]
        ) == 1000 + 200 + 100


class TestMidBatchCrash:
    @pytest.fixture
    def harness(self, serve_graph):
        cluster = HyracksCluster(num_nodes=3)
        dfs = MiniDFS(datanodes=cluster.node_ids())

        def make_service(**overrides):
            kwargs = dict(
                cluster=cluster, dfs=dfs, workers=1,
                journal="dfs:/serve/journal.wal", checkpoint_interval=1,
                watchdog=False, batch_max=8, batch_window=0.4,
            )
            kwargs.update(overrides)
            service = JobService(**kwargs)
            service.add_dataset("g", vertices=list(serve_graph))
            return service

        yield cluster, dfs, make_service
        cluster.close()

    def _crash_mid_batch(self, cluster, dfs, make_service, phase, at_hit):
        plan = FaultPlan([
            FaultSpec(site="service.crash", action="io", node=phase,
                      at_hit=at_hit, min_superstep=0),
        ])
        injector = FaultInjector(plan).attach(cluster, dfs=dfs)
        service = make_service()
        service.start()
        try:
            records = _submit_sssp(service, SOURCES)
        except ServiceCrashed:
            pytest.fail("crash fired before the batch dispatched")
        deadline = time.monotonic() + WAIT
        while service._state != "crashed" and time.monotonic() < deadline:
            time.sleep(0.02)
        assert service._state == "crashed", "crash never fired at %r" % phase
        injector.detach()
        return service, records

    @pytest.mark.parametrize(
        "phase,at_hit", [("running", 1), ("finishing", 2)],
        ids=["mid-run", "mid-fanout"],
    )
    def test_crash_recovers_every_member_never_half_a_batch(
        self, harness, solo_digests, phase, at_hit
    ):
        cluster, dfs, make_service = harness
        crashed, records = self._crash_mid_batch(
            cluster, dfs, make_service, phase, at_hit
        )
        # journal marked every batched dispatch, so recovery knows these
        # STARTED records must restart fresh (solo), never resume a
        # wrapped checkpoint
        started = [
            r for r in crashed.journal.replay().records
            if r.get("type") == RECORD_STARTED
        ]
        assert started and all(r.get("batch") for r in started)

        restarted = make_service()
        summary = restarted.recover()
        # every member is either terminal-with-digest or re-queued —
        # no member may be lost or resumed into a half-batch
        assert (
            summary["finished"] + summary["requeued"] + summary["resumed"]
            == len(SOURCES)
        )
        assert summary["resumed"] == 0, "batch members must restart fresh"
        requeued_ids = {
            job_id for job_id, record in restarted.jobs.items()
            if record.state is JobState.QUEUED
        }
        for job_id in requeued_ids:
            # the never-a-half-batch invariant: recovered members restart
            # solo, they do not wait for a batch that no longer exists
            assert getattr(restarted.jobs[job_id], "no_batch", False)
        restarted.start()
        try:
            for record, source in zip(records, SOURCES):
                replayed = restarted.jobs[record.job_id]
                assert replayed.wait(WAIT) is JobState.SUCCEEDED, (
                    replayed.error
                )
                assert replayed.result_digest == solo_digests[source]
        finally:
            restarted.shutdown(timeout=WAIT)
