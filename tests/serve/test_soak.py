"""Soak: dozens of jobs across two tenants while the cluster breathes.

The serving-layer acceptance for elasticity: 60 jobs from two tenants
run to completion while the autoscaler cycles the node set between its
band's min and max — scale-ups under backlog, drains when idle, nodes
joining and retiring between batches. The bars:

* **correctness** — every result matches the sequential direct-driver
  reference for its algorithm (the service pins ``virtual_partitions``
  at the starting size, so scaling never perturbs a single byte);
* **no leaks** — after every batch, every resident page on every node
  is unpinned, and the persistent nodes' open paged-file count returns
  to its post-batch-one level (per-run state was dropped, handles
  closed) — a handoff that leaked pins or handles would compound here;
* **no starvation** — both tenants finish everything they submitted.

Ticks are driven manually between submission and drain phases with
*injected* observations (``tick(backlog=..., executing=...)``, the same
pattern as ``Watchdog.scan(now=...)``) so the scaling schedule is
deterministic — a tick that reads the live queue depth races the worker
threads, which may already have drained the batch it was meant to see.
The threaded path is exercised elsewhere.
"""

from repro.serve import JobService
from repro.serve.autoscale import AutoscalePolicy, Autoscaler

from tests.serve.conftest import WORKLOADS

WAIT = 240
TENANTS = ("alice", "bob")
BATCHES = 6
JOBS_PER_BATCH = 10  # 60 total, split evenly between the tenants
PERSISTENT_NODES = ("node0", "node1", "node2")


def _assert_no_pin_leaks(cluster):
    for node_id, node in cluster.nodes.items():
        pinned = [
            str(page.page_id)
            for page in node.buffer_cache._pages.values()
            if page.pin_count
        ]
        assert not pinned, "%s leaked pinned pages: %s" % (node_id, pinned)


def _handle_counts(cluster):
    return {
        node_id: len(cluster.nodes[node_id].files._paged_files)
        for node_id in PERSISTENT_NODES
        if node_id in cluster.nodes
    }


def test_soak_under_cycling_autoscaler(serve_graph, reference_results):
    service = JobService(num_nodes=3, workers=3)
    scaler = Autoscaler(
        service,
        AutoscalePolicy(3, 5, up_backlog=1, down_idle_ticks=1,
                        cooldown_ticks=0),
    )
    service.autoscaler = scaler
    algorithms = sorted(WORKLOADS)
    records = []  # (tenant, algorithm, record)
    try:
        service.add_dataset("g", vertices=serve_graph)
        service.start()
        baseline_handles = None
        for batch in range(BATCHES):
            submitted = []
            for i in range(JOBS_PER_BATCH):
                tenant = TENANTS[i % len(TENANTS)]
                algorithm = algorithms[(batch + i) % len(algorithms)]
                record = service.submit({
                    "tenant": tenant,
                    "algorithm": algorithm,
                    "dataset": "g",
                    "params": dict(WORKLOADS[algorithm]),
                    "use_cache": False,
                })
                submitted.append((tenant, algorithm, record))
            # Backlog is deep (10 submissions, 3 workers): grow the
            # cluster while the batch runs. The observation is injected —
            # the submissions above ARE the backlog this tick saw.
            scaler.tick(backlog=JOBS_PER_BATCH, executing=0)
            for tenant, algorithm, record in submitted:
                state = record.wait(WAIT)
                assert state is not None and state.value == "succeeded", (
                    "batch %d: %s job %s ended %r (%s)"
                    % (batch, tenant, record.job_id, state, record.error)
                )
            records.extend(submitted)
            # The batch drained (every record.wait returned): these ticks
            # observed an idle service, shrinking back to min_nodes.
            for _ in range(4):
                scaler.tick(backlog=0, executing=0)
            _assert_no_pin_leaks(service.cluster)
            handles = _handle_counts(service.cluster)
            if baseline_handles is None:
                baseline_handles = handles
            else:
                assert handles == baseline_handles, (
                    "paged-file handles grew across batches: %r -> %r"
                    % (baseline_handles, handles)
                )

        assert len(records) == BATCHES * JOBS_PER_BATCH
        # The cluster actually breathed.
        assert scaler.scale_ups >= BATCHES - 1
        assert scaler.scale_downs >= BATCHES - 1
        assert len(service.cluster.schedulable_node_ids()) == 3
        assert service.cluster.retired_nodes  # joined nodes also left
        # No tenant starved: every submission from both tenants finished.
        finished = {tenant: 0 for tenant in TENANTS}
        for tenant, algorithm, record in records:
            assert sorted(record.result["results"]) == list(
                reference_results[algorithm]
            ), "%s %s diverged from the sequential reference" % (
                tenant, algorithm,
            )
            finished[tenant] += 1
        assert finished["alice"] == finished["bob"] == len(records) // 2
        # Membership events made it to telemetry for the whole soak.
        scale_events = service.telemetry.events.snapshot(name="cluster.scale")
        assert any(e.args["action"] == "add" for e in scale_events)
        assert any(e.args["action"] == "retire" for e in scale_events)
    finally:
        service.shutdown(timeout=WAIT)
