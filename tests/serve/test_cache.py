"""Result/plan caches: LRU behavior, keys, bit-identity plan classes."""

import pytest

from repro.algorithms import connected_components
from repro.pregelix import (
    ConnectorPolicy,
    GroupByStrategy,
    JoinStrategy,
    VertexStorage,
)
from repro.serve.cache import LRUCache, PlanCache, ResultCache, plan_class
from repro.telemetry import Telemetry


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_capacity_evicts_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_invalidate_predicate_and_all(self):
        cache = LRUCache(capacity=8)
        for key in range(4):
            cache.put(key, key)
        assert cache.invalidate(lambda key: key % 2 == 0) == 2
        assert len(cache) == 2
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_telemetry_counters(self):
        telemetry = Telemetry()
        cache = LRUCache(capacity=2, telemetry=telemetry)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert telemetry.registry.counter("serve.cache_hit").value == 1
        assert telemetry.registry.counter("serve.cache_miss").value == 1

    def test_stats(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["capacity"] == 4
        assert stats["hits"] == 1


class TestPlanClass:
    def test_join_and_storage_do_not_split_the_class(self):
        # Results are bit-identical across join strategy and storage
        # (the differential harness's invariant), so those axes must not
        # fragment the result cache.
        a = connected_components.build_job()
        b = connected_components.build_job()
        b.join_strategy = JoinStrategy.LEFT_OUTER
        b.vertex_storage = VertexStorage.LSM_BTREE
        assert plan_class(a) == plan_class(b)

    def test_groupby_and_connector_split_the_class(self):
        a = connected_components.build_job()
        b = connected_components.build_job()
        b.groupby_strategy = GroupByStrategy.HASHSORT
        assert plan_class(a) != plan_class(b)
        c = connected_components.build_job()
        c.connector_policy = ConnectorPolicy.MERGED
        assert plan_class(a) != plan_class(c)


class TestResultCacheKey:
    def test_key_components(self):
        key = ResultCache.make_key("digest", "cc", "{}", "sort/unmerged")
        assert key == ("digest", "cc", "{}", "sort/unmerged")


class TestPlanCache:
    def test_remember_and_apply(self):
        cache = PlanCache()
        proven = connected_components.build_job()
        proven.join_strategy = JoinStrategy.LEFT_OUTER
        proven.groupby_strategy = GroupByStrategy.HASHSORT
        cache.remember("digest", "cc", proven)
        assert len(cache) == 1

        fresh = connected_components.build_job()
        assert cache.apply("digest", "cc", fresh) is True
        assert fresh.join_strategy is JoinStrategy.LEFT_OUTER
        assert fresh.groupby_strategy is GroupByStrategy.HASHSORT

    def test_apply_misses_cleanly(self):
        fresh = connected_components.build_job()
        before = fresh.join_strategy
        assert PlanCache().apply("digest", "cc", fresh) is False
        assert fresh.join_strategy is before

    def test_lookup_is_keyed_by_digest_and_algorithm(self):
        cache = PlanCache()
        cache.remember("d1", "cc", connected_components.build_job())
        assert cache.lookup("d1", "cc") is not None
        assert cache.lookup("d2", "cc") is None
        assert cache.lookup("d1", "sssp") is None
