"""JobService end to end: lifecycle, caching, rejection, failure, drain."""

import threading
import time

import pytest

from repro.common.errors import TransientIOError
from repro.serve import (
    AdmissionRejected,
    JobRequest,
    JobService,
    JobState,
    TenantQuota,
)

WAIT = 120  # generous terminal-state timeout for CI machines


@pytest.fixture
def service(serve_graph):
    svc = JobService(
        num_nodes=3,
        workers=2,
        quotas={
            "alice": TenantQuota(weight=2.0),
            "bob": TenantQuota(memory_fraction=1e-9),
        },
    )
    svc.add_dataset("g", vertices=serve_graph)
    svc.start()
    yield svc
    svc.shutdown(timeout=WAIT)


def submit(svc, algorithm="cc", tenant="alice", **overrides):
    doc = {"tenant": tenant, "algorithm": algorithm, "dataset": "g"}
    doc.update(overrides)
    return svc.submit(doc)


class TestLifecycle:
    def test_submit_executes_bit_identical_to_direct_driver(
        self, service, reference_results
    ):
        record = submit(service, "cc")
        assert record.wait(WAIT) is JobState.SUCCEEDED
        assert record.cache_hit is False
        assert record.run_id is not None
        doc = record.result
        assert sorted(doc["results"]) == reference_results["cc"]
        assert doc["algorithm"] == "cc"
        assert doc["num_vertices"] == 40
        assert service.get(record.job_id) is record
        assert service.get("job-does-not-exist") is None

    def test_explicit_plan_is_honored(self, service, reference_results):
        record = submit(service, "cc", plan="loj/hashsort/unmerged/lsm")
        assert record.wait(WAIT) is JobState.SUCCEEDED
        plan = record.result["plan"]
        assert "left-outer-join" in plan
        assert "hashsort" in plan
        assert "lsm" in plan
        # Join strategy and storage never change result bits.
        assert sorted(record.result["results"]) == reference_results["cc"]

    def test_max_supersteps_caps_the_run(self, service):
        record = submit(service, "pagerank",
                        params={"iterations": 5}, max_supersteps=2,
                        use_cache=False)
        assert record.wait(WAIT) is JobState.SUCCEEDED
        assert record.result["supersteps"] <= 2

    def test_record_projection(self, service):
        record = submit(service, "cc", use_cache=False)
        record.wait(WAIT)
        doc = record.to_dict()
        assert doc["state"] == "succeeded"
        assert doc["has_result"] is True
        assert doc["request"]["algorithm"] == "cc"


class TestResultCache:
    def test_repeat_query_is_served_from_cache(self, service):
        first = submit(service, "cc")
        assert first.wait(WAIT) is JobState.SUCCEEDED
        executed = service.cluster.jobs_executed
        repeat = submit(service, "cc")
        # Already terminal at submit time: no queue, no execution.
        assert repeat.state is JobState.SUCCEEDED
        assert repeat.cache_hit is True
        assert repeat.result["results"] == first.result["results"]
        assert service.cluster.jobs_executed == executed
        assert (
            service.telemetry.registry.counter("serve.cache_hit").value >= 1
        )

    def test_different_params_miss(self, service):
        first = submit(service, "pagerank", params={"iterations": 2})
        assert first.wait(WAIT) is JobState.SUCCEEDED
        other = submit(service, "pagerank", params={"iterations": 3})
        assert other.cache_hit is False
        assert other.wait(WAIT) is JobState.SUCCEEDED

    def test_use_cache_false_always_executes(self, service):
        first = submit(service, "cc", use_cache=False)
        assert first.wait(WAIT) is JobState.SUCCEEDED
        repeat = submit(service, "cc", use_cache=False)
        assert repeat.cache_hit is False
        assert repeat.wait(WAIT) is JobState.SUCCEEDED

    def test_plan_cache_remembers_the_proven_plan(self, service):
        record = submit(service, "cc", plan="loj/hashsort/unmerged/lsm",
                        use_cache=False)
        assert record.wait(WAIT) is JobState.SUCCEEDED
        digest = service.datasets["g"].digest
        remembered = service.plan_cache.lookup(digest, "cc")
        assert remembered is not None
        assert remembered["storage"].value == "lsm-btree"


class TestRejections:
    def test_over_memory_is_structured(self, service):
        with pytest.raises(AdmissionRejected) as excinfo:
            submit(service, "cc", tenant="bob", use_cache=False)
        rejection = excinfo.value.rejection
        assert rejection.code == "over_memory"
        assert rejection.details["estimated_bytes"] > rejection.details["allowed_bytes"]

    def test_unknown_algorithm(self, service):
        with pytest.raises(AdmissionRejected) as excinfo:
            submit(service, "quicksort")
        assert excinfo.value.rejection.code == "unknown_algorithm"

    def test_unknown_dataset(self, service):
        with pytest.raises(AdmissionRejected) as excinfo:
            service.submit(
                {"tenant": "alice", "algorithm": "cc", "dataset": "nope"}
            )
        assert excinfo.value.rejection.code == "unknown_dataset"

    def test_unknown_params_rejected_up_front(self, service):
        with pytest.raises(AdmissionRejected) as excinfo:
            submit(service, "cc", params={"iterations": 5})
        assert excinfo.value.rejection.code == "bad_request"

    def test_bad_plan_signature(self, service):
        with pytest.raises(AdmissionRejected) as excinfo:
            submit(service, "cc", plan="quantum/sort/unmerged/btree")
        assert excinfo.value.rejection.code == "bad_request"

    def test_rejections_counted_in_stats(self, service):
        with pytest.raises(AdmissionRejected):
            submit(service, "quicksort")
        assert service.stats()["rejected"] == 1


class TestFailureHandling:
    def test_fatal_failure_fails_only_that_job(self, service):
        original = service._run_once

        def explode(record, dataset):
            raise RuntimeError("application bug")

        service._run_once = explode
        try:
            record = submit(service, "cc", use_cache=False)
            assert record.wait(WAIT) is JobState.FAILED
            assert record.error_kind == "fatal"
            assert record.attempts == 1
            assert "application bug" in record.error
        finally:
            service._run_once = original
        # The service survived: the next job runs normally.
        healthy = submit(service, "cc", use_cache=False)
        assert healthy.wait(WAIT) is JobState.SUCCEEDED
        assert service.healthy()

    def test_transient_failure_is_retried(self, service):
        original = service._run_once
        calls = []

        def flaky(record, dataset):
            calls.append(record.job_id)
            if len(calls) == 1:
                raise TransientIOError("node0", site="serve-test")
            return original(record, dataset)

        service._run_once = flaky
        try:
            record = submit(service, "cc", use_cache=False)
            assert record.wait(WAIT) is JobState.SUCCEEDED
            assert record.attempts == 2
        finally:
            service._run_once = original


class TestDrainAndCancel:
    def test_drain_completes_inflight_jobs(self, service):
        records = [submit(service, "cc", use_cache=False) for _ in range(3)]
        assert service.drain(timeout=WAIT) is True
        assert all(r.state is JobState.SUCCEEDED for r in records)
        with pytest.raises(AdmissionRejected) as excinfo:
            submit(service, "cc")
        assert excinfo.value.rejection.code == "draining"

    def test_cancel_queued_job(self, service):
        release = threading.Event()
        original = service._run_once

        def blocked(record, dataset):
            release.wait(WAIT)

        service._run_once = blocked
        try:
            # Two blocked jobs occupy both workers; the third stays queued.
            blockers = [submit(service, "cc", use_cache=False) for _ in range(2)]
            deadline = time.monotonic() + WAIT
            while (
                any(r.state is not JobState.RUNNING for r in blockers)
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            queued = submit(service, "cc", use_cache=False)
            assert queued.state is JobState.QUEUED
            assert service.cancel(queued.job_id) is True
            assert queued.state is JobState.CANCELLED
            # Cancelling anything non-queued is refused.
            assert service.cancel(queued.job_id) is False
            assert service.cancel(blockers[0].job_id) is False
        finally:
            release.set()
            service._run_once = original
        for record in blockers:
            assert record.wait(WAIT) is JobState.SUCCEEDED

    def test_stats_shape(self, service):
        record = submit(service, "cc")
        record.wait(WAIT)
        stats = service.stats()
        assert stats["state"] == "serving"
        assert stats["workers"] == 2
        assert stats["nodes"] == 3
        assert stats["jobs"]["succeeded"] >= 1
        assert stats["datasets"]["g"]["files"] == 3
        assert "result_cache" in stats
        assert stats["queue_depth"] == 0


class TestRequestValidation:
    def test_missing_fields(self):
        with pytest.raises(ValueError):
            JobRequest.from_dict({"tenant": "a"})

    def test_params_must_be_object(self):
        with pytest.raises(ValueError):
            JobRequest.from_dict(
                {"tenant": "a", "algorithm": "cc", "dataset": "g",
                 "params": [1, 2]}
            )

    def test_params_key_is_order_independent(self):
        a = JobRequest("t", "pagerank", "g", params={"a": 1, "b": 2})
        b = JobRequest("t", "pagerank", "g", params={"b": 2, "a": 1})
        assert a.params_key() == b.params_key()
        c = JobRequest("t", "pagerank", "g", params={"a": 1, "b": 2},
                       max_supersteps=4)
        assert a.params_key() != c.params_key()


class TestOverloadShedding:
    def test_queue_depth_threshold_sheds_with_retry_hint(self, serve_graph):
        svc = JobService(num_nodes=2, workers=1, shed_queue_depth=0)
        svc.add_dataset("g", vertices=serve_graph)
        svc.start()
        try:
            with pytest.raises(AdmissionRejected) as excinfo:
                submit(svc, "cc")
            rejection = excinfo.value.rejection
            assert rejection.code == "overloaded"
            assert rejection.details["retry_after_seconds"] == 1
            assert rejection.details["queue_depth"] == 0
            assert svc.stats()["shed"] == 1
            # Shedding happens before validation: even garbage is shed
            # cheaply instead of building a throwaway job.
            with pytest.raises(AdmissionRejected) as excinfo:
                submit(svc, "quicksort")
            assert excinfo.value.rejection.code == "overloaded"
            assert svc.stats()["shed"] == 2
        finally:
            svc.shutdown(timeout=WAIT)

    def test_journal_append_latency_sheds(self, serve_graph, tmp_path):
        svc = JobService(num_nodes=2, workers=1,
                         journal="file:%s" % tmp_path,
                         shed_append_seconds=0.0)
        svc.add_dataset("g", vertices=serve_graph)
        svc.start()
        try:
            # The first submission is admitted (no appends yet, so the
            # rolling average is 0.0); its WAL write moves the average
            # above the zero threshold and the next submission sheds.
            first = submit(svc, "cc", use_cache=False)
            assert first.wait(WAIT) is JobState.SUCCEEDED
            with pytest.raises(AdmissionRejected) as excinfo:
                submit(svc, "cc", use_cache=False)
            rejection = excinfo.value.rejection
            assert rejection.code == "overloaded"
            assert rejection.details["retry_after_seconds"] == 2
            assert rejection.details["avg_append_seconds"] > 0.0
        finally:
            svc.shutdown(timeout=WAIT)


class TestCancelStatusDocument:
    def test_not_found(self, service):
        outcome = service.cancel_job("job-999999")
        assert outcome == {"job_id": "job-999999", "status": "not_found",
                           "cancelled": False}

    def test_terminal_reports_the_winner(self, service):
        record = submit(service, "cc")
        assert record.wait(WAIT) is JobState.SUCCEEDED
        outcome = service.cancel_job(record.job_id)
        assert outcome["status"] == "terminal"
        assert outcome["state"] == "succeeded"
        assert outcome["cancelled"] is False
        assert record.state is JobState.SUCCEEDED

    def test_queued_cancel_is_terminal_and_journals_nothing_twice(
        self, service
    ):
        release = threading.Event()
        original = service._run_once
        service._run_once = lambda record, dataset: release.wait(WAIT)
        try:
            blockers = [submit(service, "cc", use_cache=False)
                        for _ in range(2)]
            deadline = time.monotonic() + WAIT
            while (
                any(r.state is not JobState.RUNNING for r in blockers)
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            queued = submit(service, "pagerank", use_cache=False)
            outcome = service.cancel_job(queued.job_id, reason="operator")
            assert outcome["status"] == "cancelled"
            assert outcome["cancelled"] is True
            assert queued.state is JobState.CANCELLED
            assert queued.error_kind == "cancelled"
            # The losing repeat observes the terminal state.
            assert service.cancel_job(queued.job_id)["status"] == "terminal"
        finally:
            release.set()
            service._run_once = original
        for record in blockers:
            record.wait(WAIT)


class TestStatsSurfaces:
    def test_journal_watchdog_and_quarantine_sections(
        self, serve_graph, tmp_path
    ):
        svc = JobService(num_nodes=2, workers=1,
                         journal="file:%s" % tmp_path)
        svc.add_dataset("g", vertices=serve_graph)
        svc.start()
        try:
            record = submit(svc, "cc", use_cache=False)
            assert record.wait(WAIT) is JobState.SUCCEEDED
            # The finished append lands just after the terminal mark;
            # drain synchronizes with the worker before reading stats.
            assert svc.drain(timeout=WAIT) is True
            stats = svc.stats()
            assert stats["journal"]["records_appended"] == 3
            assert stats["journal"]["frozen"] is False
            assert stats["journal"]["location"].startswith("file:")
            assert stats["watchdog"]["running"] is True
            assert stats["quarantine"] == {}
            assert stats["deadline_exceeded"] == 0
            assert stats["shed"] == 0
        finally:
            svc.shutdown(timeout=WAIT)

    def test_watchdog_disabled_leaves_no_section(self, service):
        assert "watchdog" in service.stats()  # default service has one
        assert "journal" not in service.stats()  # but no journal
