"""Concurrent jobs over one shared cluster are bit-identical to sequential.

The acceptance bar for the serving layer: per-run namespacing (indexes,
message files, global-state paths are all run-id-scoped) plus the
thread-safe storage stack means N jobs interleaving over one
BufferCache/FileManager produce byte-for-byte the output of the same
jobs run back to back.
"""

import importlib
import threading

import pytest

from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver
from repro.serve import JobService, JobState, TenantQuota
from repro.serve.api import SERVABLE_ALGORITHMS

from tests.serve.conftest import WORKLOADS

WAIT = 240


class TestServiceConcurrency:
    def test_eight_concurrent_jobs_two_tenants_bit_identical(
        self, serve_graph, reference_results
    ):
        """8 jobs x 2 tenants race over one cluster; results match the
        sequential direct-driver runs exactly."""
        service = JobService(
            num_nodes=3,
            workers=4,
            quotas={
                "alice": TenantQuota(weight=2.0, max_running=3),
                "bob": TenantQuota(weight=1.0, max_running=3),
            },
        )
        try:
            service.add_dataset("g", vertices=serve_graph)
            service.start()
            workloads = list(WORKLOADS.items())
            submitted = []
            for index in range(8):
                algorithm, params = workloads[index % len(workloads)]
                tenant = "alice" if index % 2 == 0 else "bob"
                record = service.submit(
                    {
                        "tenant": tenant,
                        "algorithm": algorithm,
                        "dataset": "g",
                        "params": params,
                        "use_cache": False,  # force 8 real executions
                    }
                )
                submitted.append((algorithm, record))
            for algorithm, record in submitted:
                assert record.wait(WAIT) is JobState.SUCCEEDED, record.error
                assert (
                    sorted(record.result["results"])
                    == reference_results[algorithm]
                )
            assert service.cluster.jobs_executed >= 8
        finally:
            service.shutdown(timeout=WAIT)


class TestBareDriverConcurrency:
    def test_threaded_drivers_share_one_cluster(
        self, serve_graph, reference_results
    ):
        """Three driver threads (pagerank/sssp/cc) interleave over one
        BufferCache/FileManager without the service in the way."""
        cluster = HyracksCluster(num_nodes=3)
        try:
            dfs = MiniDFS(datanodes=cluster.node_ids())
            write_graph_to_dfs(dfs, "/in/g", iter(serve_graph), num_files=3)
            outputs = {}
            errors = []

            def run(algorithm, params):
                try:
                    module = importlib.import_module(
                        SERVABLE_ALGORITHMS[algorithm][0]
                    )
                    driver = PregelixDriver(cluster, dfs)
                    driver.run(
                        module.build_job(**params),
                        "/in/g",
                        output_path="/out/%s" % algorithm,
                        parse_line=getattr(module, "parse_line", None),
                        format_record=getattr(module, "format_record", None),
                    )
                    outputs[algorithm] = sorted(
                        driver.read_output("/out/%s" % algorithm)
                    )
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append((algorithm, error))

            threads = [
                threading.Thread(target=run, args=(algorithm, params))
                for algorithm, params in WORKLOADS.items()
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=WAIT)
            assert errors == []
            for algorithm in WORKLOADS:
                assert outputs[algorithm] == reference_results[algorithm]
        finally:
            cluster.close()

    @pytest.mark.parametrize("round_trip", [1, 2])
    def test_repeat_runs_remain_identical(
        self, serve_graph, reference_results, round_trip
    ):
        """Back-to-back runs on a reused cluster stay bit-identical (no
        state leaks between runs through the shared caches)."""
        cluster = HyracksCluster(num_nodes=3)
        try:
            dfs = MiniDFS(datanodes=cluster.node_ids())
            write_graph_to_dfs(dfs, "/in/g", iter(serve_graph), num_files=3)
            module = importlib.import_module(SERVABLE_ALGORITHMS["cc"][0])
            for index in range(round_trip + 1):
                driver = PregelixDriver(cluster, dfs)
                driver.run(
                    module.build_job(),
                    "/in/g",
                    output_path="/out/%d" % index,
                    parse_line=getattr(module, "parse_line", None),
                    format_record=getattr(module, "format_record", None),
                )
                lines = sorted(driver.read_output("/out/%d" % index))
                assert lines == reference_results["cc"]
        finally:
            cluster.close()
