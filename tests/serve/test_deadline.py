"""Per-job wall-clock deadlines, enforced at superstep boundaries."""

import time

import pytest

from repro.common.errors import DeadlineExceeded
from repro.serve import JobService, JobState
from repro.serve.api import ERROR_KIND_TIMEOUT, JobRecord, JobRequest

WAIT = 120

# Enough supersteps that a tiny budget always trips mid-run.
SLOW = {"tenant": "alice", "algorithm": "pagerank", "dataset": "g",
        "params": {"iterations": 60}, "use_cache": False}


@pytest.fixture
def service(serve_graph):
    svc = JobService(num_nodes=3, workers=1)
    svc.add_dataset("g", vertices=serve_graph)
    svc.start()
    yield svc
    svc.shutdown(timeout=WAIT)


class TestDeadlineEnforcement:
    def test_exceeded_deadline_fails_with_structured_timeout(self, service):
        record = service.submit(dict(SLOW, deadline_seconds=0.02))
        assert record.wait(WAIT) is JobState.FAILED
        assert record.error_kind == ERROR_KIND_TIMEOUT
        assert record.deadline_seconds == 0.02
        assert "deadline" in record.error
        assert record.attempts == 1  # a timeout is never retried
        assert service.stats()["deadline_exceeded"] == 1

    def test_timed_out_job_frees_its_worker_slot(self, service):
        # workers=1: if the deadline did not release the slot, the
        # follow-up job could never run.
        doomed = service.submit(dict(SLOW, deadline_seconds=0.02))
        follow_up = service.submit({
            "tenant": "alice", "algorithm": "cc", "dataset": "g",
            "use_cache": False,
        })
        assert doomed.wait(WAIT) is JobState.FAILED
        assert follow_up.wait(WAIT) is JobState.SUCCEEDED

    def test_generous_deadline_does_not_fire(self, service):
        record = service.submit({
            "tenant": "alice", "algorithm": "cc", "dataset": "g",
            "use_cache": False, "deadline_seconds": WAIT,
        })
        assert record.wait(WAIT) is JobState.SUCCEEDED
        assert service.stats()["deadline_exceeded"] == 0


class TestDeadlineDefaults:
    def test_service_default_applies_when_request_is_silent(self, serve_graph):
        svc = JobService(num_nodes=3, workers=1,
                         default_deadline_seconds=0.02)
        svc.add_dataset("g", vertices=serve_graph)
        svc.start()
        try:
            record = svc.submit(dict(SLOW))
            assert record.deadline_seconds == 0.02
            assert record.wait(WAIT) is JobState.FAILED
            assert record.error_kind == ERROR_KIND_TIMEOUT
        finally:
            svc.shutdown(timeout=WAIT)

    def test_request_deadline_overrides_service_default(self, serve_graph):
        svc = JobService(num_nodes=3, workers=1,
                         default_deadline_seconds=0.001)
        svc.add_dataset("g", vertices=serve_graph)
        svc.start()
        try:
            record = svc.submit({
                "tenant": "alice", "algorithm": "cc", "dataset": "g",
                "use_cache": False, "deadline_seconds": WAIT,
            })
            assert record.deadline_seconds == WAIT
            assert record.wait(WAIT) is JobState.SUCCEEDED
        finally:
            svc.shutdown(timeout=WAIT)

    def test_no_deadline_anywhere_means_none(self, service):
        record = service.submit({
            "tenant": "alice", "algorithm": "cc", "dataset": "g",
        })
        assert record.deadline_seconds is None


class TestDeadlineValidation:
    @pytest.mark.parametrize("bad", [0, -1, "soon"])
    def test_bad_deadline_rejected_at_parse(self, bad):
        with pytest.raises(ValueError):
            JobRequest.from_dict({
                "tenant": "a", "algorithm": "cc", "dataset": "g",
                "deadline_seconds": bad,
            })

    def test_string_number_is_coerced(self):
        request = JobRequest.from_dict({
            "tenant": "a", "algorithm": "cc", "dataset": "g",
            "deadline_seconds": "2.5",
        })
        assert request.deadline_seconds == 2.5


class TestBoundaryHook:
    """The hook itself, deterministically — no timing races."""

    def record(self, **kwargs):
        request = JobRequest("t", "pagerank", "g")
        record = JobRecord(job_id="job-000001", request=request)
        for key, value in kwargs.items():
            setattr(record, key, value)
        return record

    def test_hook_raises_past_budget(self, service):
        record = self.record(deadline_seconds=0.01,
                             deadline_base=time.monotonic() - 1.0)
        hook = service._boundary_hook_for(record)
        with pytest.raises(DeadlineExceeded) as excinfo:
            hook(3)
        assert excinfo.value.budget_seconds == 0.01
        assert excinfo.value.elapsed_seconds >= 1.0

    def test_hook_quiet_within_budget(self, service):
        record = self.record(deadline_seconds=60.0,
                             deadline_base=time.monotonic())
        service._boundary_hook_for(record)(1)  # does not raise

    def test_hook_quiet_with_no_deadline(self, service):
        record = self.record(deadline_base=time.monotonic() - 100.0)
        service._boundary_hook_for(record)(1)  # does not raise

    def test_hook_counts_progress_for_the_watchdog(self, service):
        record = self.record()
        hook = service._boundary_hook_for(record)
        hook(1)
        hook(2)
        assert record.progress_superstep == 2
        assert record.progress_boundary_at is not None
