"""The durable job journal: frame codec, torn tails, storage backends."""

import os

import pytest

from repro.common.errors import ReproError
from repro.hdfs import MiniDFS
from repro.serve import (
    DFSJournalStorage,
    Journal,
    LocalJournalStorage,
    ServiceCrashed,
    open_journal,
)
from repro.serve.journal import (
    MAGIC,
    RECORD_FINISHED,
    RECORD_STARTED,
    RECORD_SUBMITTED,
    encode_record,
    iter_frames,
)


def frames(data):
    return [payload for payload, _ in iter_frames(data)]


class TestFrameCodec:
    def test_roundtrip(self):
        records = [
            {"type": "submitted", "job_id": "job-000001", "n": i}
            for i in range(5)
        ]
        blob = b"".join(encode_record(r) for r in records)
        assert frames(blob) == records

    def test_frame_opens_with_magic(self):
        assert encode_record({"a": 1})[:2] == MAGIC

    def test_partial_final_record_ends_iteration(self):
        whole = encode_record({"job_id": "a", "type": "submitted"})
        torn = encode_record({"job_id": "b", "type": "started"})
        for cut in (1, len(torn) // 2, len(torn) - 1):
            got = frames(whole + torn[:cut])
            assert len(got) == 1 and got[0]["job_id"] == "a"

    def test_bad_magic_ends_iteration(self):
        whole = encode_record({"job_id": "a"})
        assert frames(whole + b"XX" + whole[2:]) == [{"job_id": "a"}]

    def test_bad_crc_ends_iteration(self):
        first = encode_record({"job_id": "a"})
        second = bytearray(encode_record({"job_id": "b"}))
        second[-1] ^= 0x01  # flip a payload bit: CRC mismatch
        assert frames(first + bytes(second)) == [{"job_id": "a"}]

    def test_empty_input(self):
        assert frames(b"") == []


@pytest.fixture(params=["local", "dfs"])
def storage(request, tmp_path):
    if request.param == "local":
        yield LocalJournalStorage(str(tmp_path / "journal.wal"))
    else:
        dfs = MiniDFS(datanodes=["node0", "node1"])
        yield DFSJournalStorage(dfs)


class TestStorageBackends:
    def test_append_read_size(self, storage):
        assert storage.read() == b"" and storage.size() == 0
        storage.append(b"hello ")
        storage.append(b"journal")
        assert storage.read() == b"hello journal"
        assert storage.size() == len(b"hello journal")

    def test_truncate(self, storage):
        storage.append(b"0123456789")
        storage.truncate(4)
        assert storage.read() == b"0123"

    def test_damage_tear_keeps_prefix(self, storage):
        storage.append(b"0123456789")
        storage.damage_tear(3)
        assert storage.read() == b"012"

    def test_describe_names_the_backend(self, storage):
        assert storage.describe().split(":", 1)[0] in ("file", "dfs")


class TestJournal:
    def record(self, journal, record_type=RECORD_SUBMITTED, job_id="job-000001",
               **fields):
        return journal.append(record_type, job_id, **fields)

    def journal(self, tmp_path):
        return Journal(LocalJournalStorage(str(tmp_path / "j.wal")))

    def test_append_replay_roundtrip(self, tmp_path):
        journal = self.journal(tmp_path)
        self.record(journal, RECORD_SUBMITTED, request={"algorithm": "cc"})
        self.record(journal, RECORD_STARTED, run_id="serve-1-a1")
        self.record(journal, RECORD_FINISHED, state="succeeded")
        replay = journal.replay()
        assert [r["type"] for r in replay.records] == [
            "submitted", "started", "finished",
        ]
        assert replay.torn_bytes == 0
        by_job = replay.by_job()
        assert list(by_job) == ["job-000001"]
        assert by_job["job-000001"]["last"] == "finished"

    def test_unknown_record_type_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            self.record(self.journal(tmp_path), "exploded")

    def test_torn_tail_truncated_never_fatal(self, tmp_path):
        """The satellite: a crash mid-append leaves a partial final
        record; replay truncates it and recovers everything before it —
        it never aborts recovery."""
        journal = self.journal(tmp_path)
        self.record(journal, RECORD_SUBMITTED)
        self.record(journal, RECORD_STARTED, run_id="r")
        frame = encode_record({"type": "finished", "job_id": "job-000001"})
        journal.storage.append(frame[: len(frame) // 2])

        replay = journal.replay()
        assert [r["type"] for r in replay.records] == ["submitted", "started"]
        assert replay.torn_bytes == len(frame) // 2
        assert journal.torn_tails_repaired == 1
        # The tail is physically gone: appends land on a clean prefix.
        assert journal.storage.size() == replay.valid_bytes
        self.record(journal, RECORD_FINISHED, state="succeeded")
        assert [r["type"] for r in journal.replay().records] == [
            "submitted", "started", "finished",
        ]

    def test_corrupt_tail_degrades_to_torn_tail(self, tmp_path):
        journal = self.journal(tmp_path)
        self.record(journal, RECORD_SUBMITTED)
        self.record(journal, RECORD_FINISHED, state="succeeded")
        journal.storage.damage_corrupt()
        replay = journal.replay()
        assert [r["type"] for r in replay.records] == ["submitted"]
        assert replay.torn_bytes > 0

    def test_frozen_journal_raises_service_crashed(self, tmp_path):
        journal = self.journal(tmp_path)
        self.record(journal)
        journal.freeze()
        assert journal.frozen
        with pytest.raises(ServiceCrashed):
            self.record(journal, RECORD_FINISHED)
        # The pre-freeze record is intact.
        assert len(journal.replay().records) == 1

    def test_stats_and_latency(self, tmp_path):
        journal = self.journal(tmp_path)
        assert journal.avg_append_seconds() == 0.0
        self.record(journal)
        stats = journal.stats()
        assert stats["records_appended"] == 1
        assert stats["bytes"] > 0
        assert stats["avg_append_seconds"] >= 0.0
        assert stats["frozen"] is False
        assert stats["location"].startswith("file:")

    def test_by_job_later_records_win(self, tmp_path):
        journal = self.journal(tmp_path)
        self.record(journal, RECORD_SUBMITTED)
        self.record(journal, RECORD_STARTED, run_id="a1", attempt=1)
        self.record(journal, RECORD_STARTED, run_id="a2", attempt=2)
        by_job = journal.replay().by_job()
        assert by_job["job-000001"]["started"]["run_id"] == "a2"


class TestOpenJournal:
    def test_existing_journal_passes_through(self, tmp_path):
        journal = Journal(LocalJournalStorage(str(tmp_path / "j.wal")))
        assert open_journal(journal) is journal

    def test_directory_gets_wal_filename(self, tmp_path):
        journal = open_journal(str(tmp_path))
        assert journal.storage.path == os.path.join(str(tmp_path), "journal.wal")

    def test_absolute_path_with_dfs_goes_to_dfs(self, tmp_path):
        dfs = MiniDFS(datanodes=["node0"])
        journal = open_journal("/serve/journal.wal", dfs=dfs)
        assert isinstance(journal.storage, DFSJournalStorage)

    def test_file_prefix_forces_local_even_with_dfs(self, tmp_path):
        dfs = MiniDFS(datanodes=["node0"])
        target = str(tmp_path / "will-exist-later")
        journal = open_journal("file:%s" % target, dfs=dfs)
        assert isinstance(journal.storage, LocalJournalStorage)
        journal.append(RECORD_SUBMITTED, "job-000001")
        assert os.path.exists(os.path.join(target, "journal.wal"))

    def test_dfs_prefix_requires_dfs(self):
        with pytest.raises(ReproError):
            open_journal("dfs:/serve/journal.wal")

    def test_existing_local_dir_wins_over_dfs(self, tmp_path):
        dfs = MiniDFS(datanodes=["node0"])
        journal = open_journal(str(tmp_path), dfs=dfs)
        assert isinstance(journal.storage, LocalJournalStorage)
