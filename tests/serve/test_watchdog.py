"""The stuck-job watchdog and the poison-job quarantine it feeds."""

import pytest

from repro.common.errors import JobCancelled
from repro.serve import AdmissionRejected, JobService, JobState
from repro.serve.api import REJECT_QUARANTINED, JobRecord, JobRequest
from repro.serve.watchdog import StuckJobWatchdog

WAIT = 120


class FakeService:
    """Just enough surface for deterministic scan() tests."""

    def __init__(self, records):
        self.records = records
        self.flagged = []

    def executing_records(self):
        return list(self.records)

    def flag_stuck(self, record, stall_seconds, threshold_seconds):
        self.flagged.append(record.job_id)
        record.cancel_requested = "stuck"
        return True


def record_with_rhythm(job_id="job-000001", supersteps=5, avg=0.1,
                       last_boundary=100.0):
    record = JobRecord(job_id=job_id, request=JobRequest("t", "cc", "g"))
    record.progress_superstep = supersteps
    record.progress_avg_seconds = avg
    record.progress_boundary_at = last_boundary
    return record


class TestScan:
    """scan(now=...) against crafted records — no clocks, no sleeps."""

    def test_job_on_rhythm_is_not_flagged(self):
        # avg 0.1s, threshold max(8*0.1, 1.0)=1.0s; stalled only 0.5s.
        service = FakeService([record_with_rhythm()])
        watchdog = StuckJobWatchdog(service)
        assert watchdog.scan(now=100.5) == []
        assert service.flagged == []

    def test_job_past_threshold_is_flagged(self):
        service = FakeService([record_with_rhythm()])
        watchdog = StuckJobWatchdog(service)
        assert watchdog.scan(now=101.5) == ["job-000001"]
        assert watchdog.flagged == 1
        assert service.records[0].cancel_requested == "stuck"

    def test_threshold_is_a_multiple_of_the_jobs_own_average(self):
        # A legitimately slow job (avg 2s) is fine 10s into a superstep;
        # a fast job (avg 0.2s) with the same stall is wedged.
        slow = record_with_rhythm("job-000001", avg=2.0)
        fast = record_with_rhythm("job-000002", avg=0.2)
        service = FakeService([slow, fast])
        watchdog = StuckJobWatchdog(service)
        assert watchdog.scan(now=110.0) == ["job-000002"]

    def test_min_stall_floor_protects_subsecond_supersteps(self):
        # avg 1ms => 8*avg = 8ms, but the 1s floor wins.
        service = FakeService([record_with_rhythm(avg=0.001)])
        watchdog = StuckJobWatchdog(service)
        assert watchdog.scan(now=100.9) == []
        assert watchdog.scan(now=101.1) == ["job-000001"]

    def test_young_jobs_are_not_trusted(self):
        service = FakeService([record_with_rhythm(supersteps=2)])
        watchdog = StuckJobWatchdog(service)
        assert watchdog.scan(now=200.0) == []

    def test_already_cancelled_jobs_are_skipped(self):
        record = record_with_rhythm()
        record.cancel_requested = "user"
        service = FakeService([record])
        watchdog = StuckJobWatchdog(service)
        assert watchdog.scan(now=200.0) == []

    def test_job_before_first_boundary_is_skipped(self):
        record = record_with_rhythm()
        record.progress_boundary_at = None
        service = FakeService([record])
        assert StuckJobWatchdog(service).scan(now=200.0) == []

    def test_state_shape(self):
        watchdog = StuckJobWatchdog(FakeService([]), multiple=4.0)
        state = watchdog.state()
        assert state["multiple"] == 4.0
        assert state["flagged"] == 0
        assert state["running"] is False


@pytest.fixture
def service(serve_graph):
    svc = JobService(num_nodes=3, workers=1, watchdog=False)
    svc.add_dataset("g", vertices=serve_graph)
    svc.start()
    yield svc
    svc.shutdown(timeout=WAIT)


REQUEST = {"tenant": "alice", "algorithm": "cc", "dataset": "g",
           "use_cache": False}


def wedge(service, times):
    """Patch _run_once to raise a stuck-cancel for the first ``times``
    executions, then behave normally."""
    original = service._run_once
    calls = []

    def wedged(record, dataset):
        calls.append(record.job_id)
        if len(calls) <= times:
            raise JobCancelled("wedged in superstep 3", reason="stuck")
        return original(record, dataset)

    service._run_once = wedged
    return calls


class TestStuckRetryAndQuarantine:
    def test_first_stuck_cancel_gets_one_free_retry(self, service):
        calls = wedge(service, times=1)
        record = service.submit(dict(REQUEST))
        assert record.wait(WAIT) is JobState.SUCCEEDED
        assert record.attempts == 2
        assert len(calls) == 2
        assert service.stats()["quarantine"] == {}

    def test_double_stuck_fails_and_quarantines(self, service):
        wedge(service, times=2)
        record = service.submit(dict(REQUEST))
        assert record.wait(WAIT) is JobState.FAILED
        assert record.error_kind == "stuck"
        quarantine = service.stats()["quarantine"]
        key = record.request.poison_key()
        assert key in quarantine
        assert quarantine[key]["strikes"] == 2
        assert quarantine[key]["algorithm"] == "cc"

    def test_quarantined_request_is_refused_until_cleared(self, service):
        wedge(service, times=2)
        record = service.submit(dict(REQUEST))
        assert record.wait(WAIT) is JobState.FAILED
        with pytest.raises(AdmissionRejected) as excinfo:
            service.submit(dict(REQUEST))
        assert excinfo.value.rejection.code == REJECT_QUARANTINED
        assert excinfo.value.rejection.details["strikes"] == 2
        # Tenant is not part of the poison identity.
        with pytest.raises(AdmissionRejected):
            service.submit(dict(REQUEST, tenant="bob"))

        assert service.clear_quarantine(record.request.poison_key()) == 1
        healthy = service.submit(dict(REQUEST))
        assert healthy.wait(WAIT) is JobState.SUCCEEDED

    def test_clear_quarantine_all(self, service):
        wedge(service, times=2)
        record = service.submit(dict(REQUEST))
        assert record.wait(WAIT) is JobState.FAILED
        assert service.clear_quarantine() == 1
        assert service.stats()["quarantine"] == {}
        assert service.clear_quarantine() == 0

    def test_user_cancel_is_never_a_strike(self, service):
        original = service._run_once

        def user_cancelled(record, dataset):
            raise JobCancelled("user said stop", reason="user")

        service._run_once = user_cancelled
        try:
            record = service.submit(dict(REQUEST))
            assert record.wait(WAIT) is JobState.CANCELLED
            assert record.attempts == 1
            assert service.stats()["quarantine"] == {}
        finally:
            service._run_once = original


class TestFlagStuck:
    def test_flag_sets_the_cooperative_cancel(self, service):
        record = JobRecord(job_id="job-000042",
                           request=JobRequest("t", "cc", "g"))
        assert service.flag_stuck(record, 5.0, 1.0) is True
        assert record.cancel_requested == "stuck"

    def test_terminal_or_cancelled_records_are_left_alone(self, service):
        record = JobRecord(job_id="job-000043",
                           request=JobRequest("t", "cc", "g"))
        record.mark(JobState.SUCCEEDED)
        assert service.flag_stuck(record, 5.0, 1.0) is False
        assert record.cancel_requested is None
