"""Tests for the constraint-based task scheduler."""

import pytest

from repro.common.errors import SchedulingError
from repro.hyracks.connectors import MToNPartitioningConnector, OneToOneConnector
from repro.hyracks.job import JobSpec
from repro.hyracks.operators.func import MapOperator
from repro.hyracks.scheduler import (
    AbsoluteLocationConstraint,
    ChoiceLocationConstraint,
    CountConstraint,
    Scheduler,
)

NODES = ["n0", "n1", "n2", "n3"]


class TestConstraints:
    def test_absolute_placement(self):
        constraint = AbsoluteLocationConstraint(["n2", "n0"])
        assert constraint.solve(NODES) == ["n2", "n0"]

    def test_absolute_on_dead_node_raises(self):
        constraint = AbsoluteLocationConstraint(["n9"])
        with pytest.raises(SchedulingError):
            constraint.solve(NODES)

    def test_absolute_empty_raises(self):
        with pytest.raises(SchedulingError):
            AbsoluteLocationConstraint([])

    def test_choice_balances_load(self):
        constraint = ChoiceLocationConstraint(
            [["n0", "n1"], ["n0", "n1"], ["n0", "n1"], ["n0", "n1"]]
        )
        placement = constraint.solve(NODES)
        assert placement.count("n0") == 2
        assert placement.count("n1") == 2

    def test_choice_respects_candidates(self):
        constraint = ChoiceLocationConstraint([["n3"], ["n2", "n3"]])
        placement = constraint.solve(NODES)
        assert placement[0] == "n3"
        assert placement[1] in {"n2", "n3"}

    def test_choice_with_no_alive_candidate_raises(self):
        constraint = ChoiceLocationConstraint([["dead"]])
        with pytest.raises(SchedulingError):
            constraint.solve(NODES)

    def test_count_round_robin(self):
        constraint = CountConstraint(6)
        placement = constraint.solve(["a", "b"])
        assert placement == ["a", "b", "a", "b", "a", "b"]

    def test_count_must_be_positive(self):
        with pytest.raises(SchedulingError):
            CountConstraint(0)


class TestSchedulerPlacement:
    def test_default_one_partition_per_node(self):
        spec = JobSpec()
        op = spec.add(MapOperator(lambda t: t))
        placement = Scheduler().place(spec, NODES)
        assert placement[op.op_id] == NODES

    def test_partitions_per_node_multiplier(self):
        spec = JobSpec()
        op = spec.add(MapOperator(lambda t: t))
        placement = Scheduler(default_partitions_per_node=2).place(spec, ["a", "b"])
        assert len(placement[op.op_id]) == 4

    def test_explicit_constraint_wins(self):
        spec = JobSpec()
        op = spec.add(MapOperator(lambda t: t))
        op.partition_constraint = AbsoluteLocationConstraint(["n1"])
        placement = Scheduler().place(spec, NODES)
        assert placement[op.op_id] == ["n1"]

    def test_sticky_placement_is_reproducible(self):
        """Same constraints, same alive set -> same placement (stickiness)."""
        spec = JobSpec()
        op = spec.add(MapOperator(lambda t: t))
        op.partition_constraint = AbsoluteLocationConstraint(["n3", "n1"])
        first = Scheduler().place(spec, NODES)
        second = Scheduler().place(spec, NODES)
        assert first == second

    def test_one_to_one_arity_mismatch_rejected(self):
        spec = JobSpec()
        a = spec.add(MapOperator(lambda t: t))
        b = spec.add(MapOperator(lambda t: t))
        a.partition_constraint = CountConstraint(2)
        b.partition_constraint = CountConstraint(3)
        spec.connect(OneToOneConnector(), a, b)
        with pytest.raises(SchedulingError):
            Scheduler().place(spec, NODES)

    def test_mton_arity_mismatch_allowed(self):
        spec = JobSpec()
        a = spec.add(MapOperator(lambda t: t))
        b = spec.add(MapOperator(lambda t: t))
        a.partition_constraint = CountConstraint(2)
        b.partition_constraint = CountConstraint(3)
        spec.connect(MToNPartitioningConnector(key_fn=lambda t: t), a, b)
        placement = Scheduler().place(spec, NODES)
        assert len(placement[a.op_id]) == 2
        assert len(placement[b.op_id]) == 3

    def test_no_alive_nodes_raises(self):
        spec = JobSpec()
        spec.add(MapOperator(lambda t: t))
        with pytest.raises(SchedulingError):
            Scheduler().place(spec, [])
