"""Tests for the bloom filter and its LSM integration."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.serde import encode_key
from repro.hyracks.storage.bloom import BloomFilter
from repro.hyracks.storage.lsm_btree import LSMBTree


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected_entries=1000)
        keys = [b"key-%05d" % i for i in range(1000)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter(expected_entries=2000, false_positive_rate=0.01)
        for i in range(2000):
            bloom.add(b"in-%06d" % i)
        false_positives = sum(
            1 for i in range(10000) if b"out-%06d" % i in bloom
        )
        assert false_positives / 10000 < 0.05  # target 1%, generous bound

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(expected_entries=10)
        assert b"anything" not in bloom

    def test_sizing(self):
        small = BloomFilter(expected_entries=100)
        large = BloomFilter(expected_entries=10000)
        assert large.nbytes > small.nbytes
        assert small.num_hashes >= 1

    def test_invalid_fpr_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(10, false_positive_rate=0.0)
        with pytest.raises(ValueError):
            BloomFilter(10, false_positive_rate=1.5)

    def test_deterministic_across_instances(self):
        a = BloomFilter(expected_entries=50)
        b = BloomFilter(expected_entries=50)
        for i in range(50):
            a.add(b"k%d" % i)
            b.add(b"k%d" % i)
        assert a._bits == b._bits

    @given(st.sets(st.binary(min_size=1, max_size=20), max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_membership_property(self, keys):
        bloom = BloomFilter(expected_entries=max(len(keys), 1))
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)


class TestLSMBloomIntegration:
    def test_misses_skip_components(self, buffer_cache):
        lsm = LSMBTree(buffer_cache, memory_budget_bytes=1 << 10, max_components=20)
        for i in range(0, 2000, 2):  # even keys only
            lsm.insert(encode_key(i), b"v")
        lsm.flush_memory_component()
        assert lsm.num_disk_components >= 2
        before = lsm.bloom_skips
        for i in range(1, 2001, 2):  # odd keys: all misses
            assert lsm.lookup(encode_key(i)) is None
        skipped = lsm.bloom_skips - before
        # Most component consultations for absent keys are avoided.
        assert skipped > 500

    def test_hits_still_found_after_flushes(self, buffer_cache):
        lsm = LSMBTree(buffer_cache, memory_budget_bytes=1 << 10, max_components=8)
        expected = {}
        rng = random.Random(3)
        for i in range(1500):
            key = encode_key(rng.randrange(400))
            value = b"v%06d" % i
            lsm.insert(key, value)
            expected[key] = value
        for key, value in expected.items():
            assert lsm.lookup(key) == value

    def test_merge_rebuilds_bloom(self, buffer_cache):
        lsm = LSMBTree(buffer_cache, memory_budget_bytes=1 << 20, max_components=1)
        lsm.insert(encode_key(1), b"a")
        lsm.flush_memory_component()
        lsm.insert(encode_key(2), b"b")
        lsm.flush_memory_component()  # triggers a merge into one component
        assert lsm.num_disk_components == 1
        assert lsm.lookup(encode_key(1)) == b"a"
        assert lsm.lookup(encode_key(2)) == b"b"
