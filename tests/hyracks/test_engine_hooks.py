"""Engine lifecycle-hook and result-shape tests."""

import pytest

from repro.hyracks.connectors import OneToOneConnector
from repro.hyracks.engine import HyracksCluster
from repro.hyracks.job import JobSpec, OperatorDescriptor
from repro.hyracks.operators.func import CollectSinkOperator, GeneratorSourceOperator


class HookedOperator(OperatorDescriptor):
    def __init__(self):
        super().__init__("Hooked")
        self.events = []

    def initialize(self, job_ctx):
        self.events.append("initialize")

    def run(self, ctx, partition, inputs):
        self.events.append("run-%d" % partition)
        return {self.OUT: inputs[0]}

    def finalize(self, job_ctx):
        self.events.append("finalize")


@pytest.fixture
def cluster(tmp_path):
    with HyracksCluster(num_nodes=3, root_dir=str(tmp_path / "h")) as c:
        yield c


class TestHooks:
    def test_initialize_before_clones_finalize_after(self, cluster):
        spec = JobSpec("hooks")
        source = spec.add(GeneratorSourceOperator(lambda ctx, p: [p]))
        hooked = spec.add(HookedOperator())
        sink = spec.add(CollectSinkOperator("out"))
        spec.connect(OneToOneConnector(), source, hooked)
        spec.connect(OneToOneConnector(), hooked, sink)
        cluster.execute(spec)
        assert hooked.events[0] == "initialize"
        assert hooked.events[-1] == "finalize"
        assert hooked.events[1:-1] == ["run-0", "run-1", "run-2"]


class TestJobResultShape:
    def test_cache_stat_deltas_isolated_per_job(self, cluster):
        from repro.common.serde import encode_key
        from repro.hyracks.operators.index_ops import IndexBulkLoadOperator, IndexScanOperator
        from repro.hyracks.scheduler import CountConstraint
        from repro.hyracks.storage.btree import BTree

        def build_load():
            spec = JobSpec("load")
            source = spec.add(
                GeneratorSourceOperator(
                    lambda ctx, p: [(encode_key(i), b"v" * 50) for i in range(300)]
                )
            )
            source.partition_constraint = CountConstraint(1)
            load = spec.add(
                IndexBulkLoadOperator("hk", lambda c, p: BTree(c.buffer_cache))
            )
            load.partition_constraint = CountConstraint(1)
            spec.connect(OneToOneConnector(), source, load)
            return spec

        def build_scan():
            spec = JobSpec("scan")
            scan = spec.add(IndexScanOperator("hk"))
            scan.partition_constraint = CountConstraint(1)
            sink = spec.add(CollectSinkOperator("rows"))
            sink.partition_constraint = CountConstraint(1)
            spec.connect(OneToOneConnector(), scan, sink)
            return spec

        cluster.execute(build_load())
        first = cluster.execute(build_scan())
        second = cluster.execute(build_scan())
        # Cache deltas are per job: the second in-memory scan hits.
        assert second.cache_misses <= first.cache_misses
        assert len(second.gather("rows")) == 300

    def test_network_and_disk_counters_non_negative(self, cluster):
        spec = JobSpec("counters")
        source = spec.add(GeneratorSourceOperator(lambda ctx, p: [1, 2, 3]))
        sink = spec.add(CollectSinkOperator("x"))
        spec.connect(OneToOneConnector(), source, sink)
        result = cluster.execute(spec)
        assert result.network_io.network_bytes >= 0
        assert result.disk_io.disk_read_bytes >= 0
        assert result.cache_misses >= 0
