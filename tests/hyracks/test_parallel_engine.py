"""Parallel (thread-pool) superstep execution: exchanges and failure order.

Covers the mechanics DESIGN.md §13 relies on: the bounded exchange queue
(FIFO, backpressure, clean shutdown), the equivalence of the parallel
Exchange path with the sequential ``route`` path for every connector
family, and the engine-level contracts — bit-identical job results at any
worker count, lowest-partition-wins failure surfacing, and worker-thread
registration in the telemetry tracer.
"""

import threading
import time

import pytest

from repro.common.errors import JobFailure
from repro.hyracks.connectors import (
    BroadcastConnector,
    ExchangeQueue,
    MToNPartitioningConnector,
    MToNPartitioningMergingConnector,
    MToOneAggregatorConnector,
    OneToOneConnector,
)
from repro.hyracks.engine import HyracksCluster
from repro.hyracks.job import JobSpec
from repro.hyracks.operators.func import (
    CollectSinkOperator,
    GeneratorSourceOperator,
    MapOperator,
)
from repro.hyracks.scheduler import (
    SequentialTaskRunner,
    ThreadPoolTaskRunner,
    make_task_runner,
)


class TestExchangeQueue:
    def test_fifo_round_trip(self):
        queue = ExchangeQueue(capacity_tuples=100)
        queue.put(0, 0, [1, 2])
        queue.put(1, 0, [3])
        queue.put(0, 1, [4, 5, 6])
        assert queue.buffered_tuples == 6
        assert queue.get() == (0, 0, [1, 2])
        assert queue.get() == (1, 0, [3])
        assert queue.get() == (0, 1, [4, 5, 6])
        assert queue.buffered_tuples == 0

    def test_get_returns_none_after_close_and_drain(self):
        queue = ExchangeQueue(capacity_tuples=10)
        queue.put(0, 0, [1])
        queue.close()
        assert queue.get() == (0, 0, [1])  # buffered data survives close
        assert queue.get() is None

    def test_put_after_close_raises(self):
        queue = ExchangeQueue(capacity_tuples=10)
        queue.close()
        with pytest.raises(RuntimeError, match="closed exchange queue"):
            queue.put(0, 0, [1])

    def test_oversized_batch_admitted_when_empty(self):
        # A single chunk larger than the whole capacity must not deadlock.
        queue = ExchangeQueue(capacity_tuples=2)
        queue.put(0, 0, list(range(50)))
        assert queue.buffered_tuples == 50

    def test_backpressure_blocks_producer_until_drained(self):
        queue = ExchangeQueue(capacity_tuples=4)
        queue.put(0, 0, [1, 2, 3])
        unblocked = threading.Event()

        def producer():
            queue.put(0, 0, [4, 5, 6])  # 3 + 3 > 4: must wait
            unblocked.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not unblocked.wait(timeout=0.05)
        assert queue.get() == (0, 0, [1, 2, 3])
        assert unblocked.wait(timeout=2.0)
        thread.join(timeout=2.0)
        assert queue.backpressure_waits >= 1
        assert queue.get() == (0, 0, [4, 5, 6])


def _exchange_vs_route(connector, per_sender, num_consumers, chunk=2):
    """Push the same batches through both paths; both results."""
    routed = connector.route([list(b) for b in per_sender], num_consumers, None)
    exchange = connector.open_exchange(
        len(per_sender), num_consumers, None, capacity=8, chunk=chunk
    )
    threads = [
        threading.Thread(target=exchange.send, args=(sender, list(batch)))
        for sender, batch in enumerate(per_sender)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return routed, exchange.collect()


class TestExchangeMatchesRoute:
    """The parallel path must assemble exactly what ``route`` assembles."""

    def test_partitioning_connector(self):
        connector = MToNPartitioningConnector(key_fn=lambda t: t[0])
        per_sender = [
            [(k, s * 100 + i) for i, k in enumerate(range(s, s + 9))]
            for s in range(3)
        ]
        routed, exchanged = _exchange_vs_route(connector, per_sender, 4)
        assert exchanged == routed

    def test_merging_connector_produces_sorted_streams(self):
        connector = MToNPartitioningMergingConnector(
            key_fn=lambda t: t[0], sort_key_fn=lambda t: t[0]
        )
        per_sender = [
            sorted((k, s) for k in range((s * 7) % 5, 20, s + 2))
            for s in range(3)
        ]
        routed, exchanged = _exchange_vs_route(connector, per_sender, 2)
        assert exchanged == routed
        for stream in exchanged:
            assert stream == sorted(stream, key=lambda t: t[0])

    def test_merging_connector_rejects_unsorted_sender(self):
        connector = MToNPartitioningMergingConnector(key_fn=lambda t: t[0])
        with pytest.raises(ValueError, match="sorted sender streams"):
            connector.route([[(3, 0), (1, 0)]], 1, None)

    def test_aggregator_connector(self):
        connector = MToOneAggregatorConnector()
        per_sender = [[(s, i) for i in range(4)] for s in range(3)]
        routed, exchanged = _exchange_vs_route(connector, per_sender, 1)
        assert exchanged == routed
        # Sender partition-id order is the determinism contract.
        assert [t[0] for t in exchanged[0]] == [0] * 4 + [1] * 4 + [2] * 4

    def test_broadcast_connector(self):
        connector = BroadcastConnector()
        per_sender = [[(s, i) for i in range(3)] for s in range(2)]
        routed, exchanged = _exchange_vs_route(connector, per_sender, 3)
        assert exchanged == routed
        assert all(stream == exchanged[0] for stream in exchanged)

    def test_one_to_one_connector(self):
        connector = OneToOneConnector()
        per_sender = [[s, s, s] for s in range(3)]
        routed, exchanged = _exchange_vs_route(connector, per_sender, 3)
        assert exchanged == routed == per_sender

    def test_exchange_close_is_idempotent(self):
        connector = OneToOneConnector()
        exchange = connector.open_exchange(1, 1, None)
        exchange.send(0, [1, 2])
        exchange.close()
        exchange.close()
        assert exchange.collect() == [[1, 2]]


class TestTaskRunners:
    def test_make_task_runner_picks_mode(self):
        sequential = make_task_runner(1, None)
        assert isinstance(sequential, SequentialTaskRunner)
        assert sequential.concurrency == 1
        parallel = make_task_runner(4, None)
        try:
            assert isinstance(parallel, ThreadPoolTaskRunner)
            assert parallel.concurrency == 4
        finally:
            parallel.close()

    def test_thread_pool_preserves_partition_order(self):
        runner = make_task_runner(4, None)
        try:
            def task(partition):
                def run():
                    time.sleep(0.02 * (3 - partition))  # finish out of order
                    return partition * 10
                return run

            outcomes = runner.map([task(p) for p in range(4)])
        finally:
            runner.close()
        assert [o.partition for o in outcomes] == [0, 1, 2, 3]
        assert [o.value for o in outcomes] == [0, 10, 20, 30]
        assert not any(o.failed for o in outcomes)

    def test_thread_pool_captures_all_failures(self):
        runner = make_task_runner(2, None)
        try:
            def boom(partition):
                def run():
                    raise ValueError("clone %d" % partition)
                return run

            outcomes = runner.map([boom(p) for p in range(3)])
        finally:
            runner.close()
        assert all(o.failed for o in outcomes)
        assert [str(o.error) for o in outcomes] == [
            "clone 0", "clone 1", "clone 2"
        ]

    def test_sequential_runner_stops_at_first_failure(self):
        runner = SequentialTaskRunner()
        ran = []

        def task(partition):
            def run():
                ran.append(partition)
                if partition == 1:
                    raise ValueError("stop")
                return partition
            return run

        outcomes = runner.map([task(p) for p in range(4)])
        assert ran == [0, 1]  # partitions 2 and 3 never started
        assert len(outcomes) == 2 and outcomes[1].failed


def _square_shuffle_job():
    spec = JobSpec("squares")
    source = spec.add(
        GeneratorSourceOperator(
            lambda ctx, p: [(p * 10 + i, (p * 10 + i) ** 2) for i in range(25)]
        )
    )
    stage = spec.add(MapOperator(lambda t: t))
    sink = spec.add(CollectSinkOperator("out"))
    spec.connect(MToNPartitioningConnector(key_fn=lambda t: t[0]), source, stage)
    spec.connect(OneToOneConnector(), stage, sink)
    return spec


class TestParallelEngine:
    def test_parallel_result_matches_sequential(self, tmp_path):
        with HyracksCluster(
            num_nodes=4, root_dir=str(tmp_path / "seq")
        ) as sequential:
            expected = sequential.execute(_square_shuffle_job())
        with HyracksCluster(
            num_nodes=4, parallelism=4, root_dir=str(tmp_path / "par")
        ) as parallel:
            assert parallel.task_runner.concurrency == 4
            actual = parallel.execute(_square_shuffle_job())
        assert actual.collected == expected.collected
        assert actual.gather("out") == expected.gather("out")

    def test_lowest_partition_failure_wins(self, tmp_path):
        def explode(t):
            raise ValueError("partition key %d" % t[0])

        spec = JobSpec("explode")
        source = spec.add(GeneratorSourceOperator(lambda ctx, p: [(p, p)]))
        stage = spec.add(MapOperator(explode))
        sink = spec.add(CollectSinkOperator("out"))
        spec.connect(OneToOneConnector(), source, stage)
        spec.connect(OneToOneConnector(), stage, sink)
        with HyracksCluster(
            num_nodes=4, parallelism=4, root_dir=str(tmp_path / "c")
        ) as cluster:
            with pytest.raises(ValueError, match="partition key 0"):
                cluster.execute(spec)

    def test_injected_worker_failure_becomes_job_failure(self, tmp_path):
        with HyracksCluster(
            num_nodes=3, parallelism=3, root_dir=str(tmp_path / "c")
        ) as cluster:
            cluster.nodes["node1"].inject_failure(after_tasks=1)
            with pytest.raises(JobFailure):
                cluster.execute(_square_shuffle_job())
            events = cluster.telemetry.events.snapshot(name="node.failure")
            assert events and events[0].args["node"] == "node1"

    def test_worker_threads_registered_with_tracer(self, tmp_path):
        with HyracksCluster(
            num_nodes=2, parallelism=2, root_dir=str(tmp_path / "c")
        ) as cluster:
            cluster.execute(_square_shuffle_job())
            names = set(cluster.telemetry.tracer.thread_names.values())
        assert any(name.startswith("hyx-worker") for name in names)
