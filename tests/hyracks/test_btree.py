"""Correctness tests for the page-based B+-tree, including property tests."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.accounting import IOCounters
from repro.common.errors import StorageError
from repro.common.serde import encode_key
from repro.hyracks.storage.btree import BTree
from repro.hyracks.storage.buffer_cache import BufferCache
from repro.hyracks.storage.file_manager import FileManager


@pytest.fixture
def btree(buffer_cache):
    return BTree(buffer_cache)


def key(i):
    return encode_key(i)


class TestBasicOperations:
    def test_empty_tree(self, btree):
        assert btree.lookup(key(1)) is None
        assert list(btree.scan()) == []
        assert len(btree) == 0

    def test_insert_lookup(self, btree):
        btree.insert(key(1), b"one")
        btree.insert(key(2), b"two")
        assert btree.lookup(key(1)) == b"one"
        assert btree.lookup(key(2)) == b"two"
        assert btree.lookup(key(3)) is None
        assert len(btree) == 2

    def test_insert_overwrites(self, btree):
        btree.insert(key(1), b"a")
        btree.insert(key(1), b"b")
        assert btree.lookup(key(1)) == b"b"
        assert len(btree) == 1

    def test_delete(self, btree):
        btree.insert(key(1), b"x")
        assert btree.delete(key(1))
        assert btree.lookup(key(1)) is None
        assert not btree.delete(key(1))
        assert len(btree) == 0

    def test_non_bytes_key_rejected(self, btree):
        with pytest.raises(TypeError):
            btree.insert(1, b"x")
        with pytest.raises(TypeError):
            btree.insert(key(1), "not bytes")


class TestScans:
    def test_full_scan_in_order(self, btree):
        ids = list(range(50))
        random.Random(7).shuffle(ids)
        for i in ids:
            btree.insert(key(i), b"v%d" % i)
        scanned = list(btree.scan())
        assert [k for k, _v in scanned] == [key(i) for i in range(50)]
        assert scanned[10][1] == b"v10"

    def test_range_scan_bounds(self, btree):
        for i in range(20):
            btree.insert(key(i), b"")
        keys = [k for k, _ in btree.scan(low=key(5), high=key(12))]
        assert keys == [key(i) for i in range(5, 12)]

    def test_scan_low_only(self, btree):
        for i in range(10):
            btree.insert(key(i), b"")
        keys = [k for k, _ in btree.scan(low=key(7))]
        assert keys == [key(7), key(8), key(9)]

    def test_scan_high_only(self, btree):
        for i in range(10):
            btree.insert(key(i), b"")
        keys = [k for k, _ in btree.scan(high=key(3))]
        assert keys == [key(0), key(1), key(2)]

    def test_scan_survives_same_size_update(self, btree):
        """The Pregelix compute mini-operator pattern: update during scan."""
        for i in range(200):
            btree.insert(key(i), b"%08d" % i)
        seen = []
        for k, _v in btree.scan():
            seen.append(k)
            btree.insert(k, b"UPDATED!")  # same serialized size
        assert seen == [key(i) for i in range(200)]
        assert btree.lookup(key(123)) == b"UPDATED!"

    def test_scan_survives_splits_from_inserts(self, btree):
        """Inserting fresh keys during a scan must not lose or dup keys."""
        for i in range(0, 400, 2):
            btree.insert(key(i), b"x" * 40)
        seen = []
        extra = iter(range(1, 400, 2))
        for k, _v in btree.scan():
            seen.append(k)
            fresh = next(extra, None)
            if fresh is not None:
                btree.insert(key(fresh), b"y" * 40)
        # Every pre-existing even key is seen exactly once, in order.
        evens = [k for k in seen if encode_even(k)]
        assert evens == [key(i) for i in range(0, 400, 2)]
        assert seen == sorted(seen)
        assert len(seen) == len(set(seen))


def encode_even(k):
    from repro.common.serde import decode_key

    return decode_key(k) % 2 == 0


class TestSplitsAndScale:
    def test_many_inserts_force_splits(self, btree):
        n = 2000
        ids = list(range(n))
        random.Random(3).shuffle(ids)
        for i in ids:
            btree.insert(key(i), b"value-%06d" % i)
        assert btree.smo_counter > 0
        for i in (0, 1, n // 2, n - 1):
            assert btree.lookup(key(i)) == b"value-%06d" % i
        assert len(list(btree.scan())) == n

    def test_sequential_and_reverse_inserts(self, buffer_cache):
        for ordering in (range(500), reversed(range(500))):
            tree = BTree(buffer_cache)
            for i in ordering:
                tree.insert(key(i), b"v")
            assert [k for k, _ in tree.scan()] == [key(i) for i in range(500)]

    def test_works_with_tiny_cache(self, tiny_buffer_cache):
        """The out-of-core claim: correctness with a 3-page cache."""
        tree = BTree(tiny_buffer_cache)
        n = 1500
        for i in range(n):
            tree.insert(key(i), b"payload-%d" % i)
        assert tiny_buffer_cache.stats.evictions > 0
        for i in (0, 700, n - 1):
            assert tree.lookup(key(i)) == b"payload-%d" % i
        assert len(list(tree.scan())) == n


class TestBulkLoad:
    def test_bulk_load_roundtrip(self, btree):
        pairs = [(key(i), b"v%d" % i) for i in range(1000)]
        btree.bulk_load(pairs)
        assert len(btree) == 1000
        assert btree.lookup(key(567)) == b"v567"
        assert [k for k, _ in btree.scan()] == [k for k, _ in pairs]

    def test_bulk_load_empty(self, btree):
        btree.bulk_load([])
        assert len(btree) == 0
        assert list(btree.scan()) == []

    def test_bulk_load_single(self, btree):
        btree.bulk_load([(key(5), b"five")])
        assert btree.lookup(key(5)) == b"five"

    def test_bulk_load_rejects_unsorted(self, btree):
        with pytest.raises(StorageError):
            btree.bulk_load([(key(2), b""), (key(1), b"")])

    def test_bulk_load_rejects_duplicates(self, btree):
        with pytest.raises(StorageError):
            btree.bulk_load([(key(1), b""), (key(1), b"")])

    def test_bulk_load_rejects_non_empty(self, btree):
        btree.insert(key(1), b"")
        with pytest.raises(StorageError):
            btree.bulk_load([(key(2), b"")])

    def test_insert_after_bulk_load(self, btree):
        btree.bulk_load([(key(i * 2), b"even") for i in range(500)])
        for i in range(100):
            btree.insert(key(i * 2 + 1), b"odd")
        keys = [k for k, _ in btree.scan()]
        assert keys == sorted(keys)
        assert len(keys) == 600
        assert btree.lookup(key(13)) == b"odd"

    def test_lookup_smallest_after_bulk_load(self, btree):
        btree.bulk_load([(key(i), b"v") for i in range(100, 2000)])
        assert btree.lookup(key(100)) == b"v"
        assert btree.lookup(key(5)) is None


class TestOverflowRecords:
    def test_large_value_roundtrip(self, btree):
        big = bytes(range(256)) * 100  # 25.6 KB, far beyond one 4 KB page
        btree.insert(key(1), big)
        assert btree.lookup(key(1)) == big

    def test_large_value_in_scan(self, btree):
        big = b"E" * 10000
        btree.insert(key(2), b"small")
        btree.insert(key(1), big)
        scanned = dict(btree.scan())
        assert scanned[key(1)] == big
        assert scanned[key(2)] == b"small"

    def test_large_value_via_bulk_load(self, btree):
        big = b"G" * 9000
        btree.bulk_load([(key(1), b"a"), (key(2), big), (key(3), b"c")])
        assert btree.lookup(key(2)) == big

    def test_overwrite_large_value(self, btree):
        btree.insert(key(1), b"B" * 9000)
        btree.insert(key(1), b"tiny")
        assert btree.lookup(key(1)) == b"tiny"


class TestPersistence:
    def test_spill_and_reload_through_cache(self, tmp_path):
        """Data written through one cache instance is durable on disk."""
        files = FileManager(str(tmp_path / "n"), IOCounters())
        cache = BufferCache(4096 * 2, 4096, files)
        tree = BTree(cache)
        for i in range(300):
            tree.insert(key(i), b"d%d" % i)
        tree.close()
        # All pages were flushed; evict everything and re-read.
        assert tree.lookup(key(299)) == b"d299"
        files.destroy()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "lookup"]),
            st.integers(min_value=0, max_value=200),
        ),
        max_size=300,
    )
)
def test_btree_matches_dict_model(tmp_path_factory, operations):
    """Property: a B-tree behaves exactly like a sorted dict."""
    root = tmp_path_factory.mktemp("prop")
    files = FileManager(str(root), IOCounters())
    cache = BufferCache(4096 * 4, 4096, files)
    tree = BTree(cache)
    model = {}
    for op, i in operations:
        k = key(i)
        if op == "insert":
            value = b"v%d" % i
            tree.insert(k, value)
            model[k] = value
        elif op == "delete":
            assert tree.delete(k) == (k in model)
            model.pop(k, None)
        else:
            assert tree.lookup(k) == model.get(k)
    assert list(tree.scan()) == sorted(model.items())
    assert len(tree) == len(model)
    files.destroy()
