"""Tests for slotted pages, the buffer cache, and run files."""

import pytest

from repro.common.errors import StorageError
from repro.hyracks.storage.buffer_cache import BufferCache
from repro.hyracks.storage.pages import Page, PageId, PageKind
from repro.hyracks.storage.run_file import RunFileReader, RunFileWriter


def make_page(capacity=4096, kind=PageKind.LEAF):
    return Page(PageId(0, 0), kind, capacity)


class TestPage:
    def test_put_keeps_keys_sorted(self):
        page = make_page()
        for key in (b"c", b"a", b"b"):
            page.put(key, b"v" + key)
        assert page.keys == [b"a", b"b", b"c"]

    def test_put_replaces_existing(self):
        page = make_page()
        assert page.put(b"k", b"1") is False
        assert page.put(b"k", b"2") is True
        assert page.values == [b"2"]
        assert page.num_entries == 1

    def test_find_and_lower_bound(self):
        page = make_page()
        page.put(b"b", b"")
        page.put(b"d", b"")
        assert page.find(b"b") == 0
        assert page.find(b"c") is None
        assert page.lower_bound(b"c") == 1
        assert page.lower_bound(b"e") == 2

    def test_remove(self):
        page = make_page()
        page.put(b"a", b"1")
        assert page.remove(b"a")
        assert not page.remove(b"a")
        assert page.num_entries == 0

    def test_fits_respects_capacity(self):
        page = make_page(capacity=64)
        assert page.fits(b"k", b"v")
        assert not page.fits(b"k", b"x" * 100)

    def test_split_moves_upper_half(self):
        left = make_page()
        right = Page(PageId(0, 1), PageKind.LEAF, 4096)
        for i in range(10):
            left.put(b"%02d" % i, b"v")
        separator = left.split_into(right)
        assert separator == b"05"
        assert left.keys == [b"%02d" % i for i in range(5)]
        assert right.keys == [b"%02d" % i for i in range(5, 10)]
        assert left.next_page_no == 1

    def test_split_preserves_chain(self):
        left = make_page()
        left.next_page_no = 77
        right = Page(PageId(0, 1), PageKind.LEAF, 4096)
        left.put(b"a", b"")
        left.put(b"b", b"")
        left.split_into(right)
        assert right.next_page_no == 77

    def test_split_single_entry_raises(self):
        page = make_page()
        page.put(b"a", b"")
        with pytest.raises(StorageError):
            page.split_into(Page(PageId(0, 1), PageKind.LEAF, 4096))

    def test_serialization_roundtrip(self):
        page = make_page()
        page.put(b"alpha", b"1")
        page.put(b"beta", b"\x00\xff")
        page.next_page_no = 42
        image = page.to_bytes()
        clone = Page.from_bytes(PageId(0, 0), image, 4096)
        assert clone.keys == page.keys
        assert clone.values == page.values
        assert clone.next_page_no == 42
        assert clone.kind == PageKind.LEAF

    def test_oversized_image_raises(self):
        page = make_page(capacity=32)
        page.keys = [b"k"]
        page.values = [b"v" * 100]
        with pytest.raises(StorageError):
            page.to_bytes()

    def test_child_index_routing(self):
        page = make_page(kind=PageKind.INTERIOR)
        page.put(b"", b"c0")
        page.put(b"m", b"c1")
        assert page.child_index(b"a") == 0
        assert page.child_index(b"m") == 1
        assert page.child_index(b"z") == 1


class TestBufferCache:
    def test_new_page_is_pinned(self, buffer_cache):
        file_id = buffer_cache.create_file()
        page = buffer_cache.new_page(file_id, PageKind.LEAF)
        assert page.pin_count == 1
        buffer_cache.unpin(page, dirty=True)

    def test_pin_hit_and_miss(self, buffer_cache):
        file_id = buffer_cache.create_file()
        page = buffer_cache.new_page(file_id, PageKind.LEAF)
        page.put(b"k", b"v")
        pid = page.page_id
        buffer_cache.unpin(page, dirty=True)
        again = buffer_cache.pin(pid)
        assert again is page
        assert buffer_cache.stats.hits == 1
        buffer_cache.unpin(again)

    def test_eviction_and_reload(self, tiny_buffer_cache):
        cache = tiny_buffer_cache
        file_id = cache.create_file()
        page_ids = []
        for i in range(10):
            page = cache.new_page(file_id, PageKind.LEAF)
            page.put(b"key%d" % i, b"value%d" % i)
            page_ids.append(page.page_id)
            cache.unpin(page, dirty=True)
        assert cache.stats.evictions > 0
        assert cache.num_cached_pages <= 3
        # Every page is still readable after eviction.
        for i, pid in enumerate(page_ids):
            page = cache.pin(pid)
            assert page.values[0] == b"value%d" % i
            cache.unpin(page)

    def test_pinned_pages_survive_pressure(self, tiny_buffer_cache):
        cache = tiny_buffer_cache
        file_id = cache.create_file()
        pinned = cache.new_page(file_id, PageKind.LEAF)
        pinned.put(b"keep", b"me")
        for _ in range(6):
            page = cache.new_page(file_id, PageKind.LEAF)
            cache.unpin(page, dirty=True)
        assert cache.pin(pinned.page_id) is pinned
        cache.unpin(pinned)
        cache.unpin(pinned, dirty=True)

    def test_unpin_unpinned_raises(self, buffer_cache):
        file_id = buffer_cache.create_file()
        page = buffer_cache.new_page(file_id, PageKind.LEAF)
        buffer_cache.unpin(page)
        with pytest.raises(StorageError):
            buffer_cache.unpin(page)

    def test_delete_file_drops_pages(self, buffer_cache):
        file_id = buffer_cache.create_file()
        page = buffer_cache.new_page(file_id, PageKind.LEAF)
        buffer_cache.unpin(page, dirty=True)
        buffer_cache.delete_file(file_id)
        assert buffer_cache.num_cached_pages == 0

    def test_flush_writes_dirty_pages(self, buffer_cache):
        file_id = buffer_cache.create_file()
        page = buffer_cache.new_page(file_id, PageKind.LEAF)
        page.put(b"a", b"b")
        buffer_cache.unpin(page, dirty=True)
        buffer_cache.flush_file(file_id)
        assert buffer_cache.stats.writebacks == 1
        assert not page.dirty


class TestRunFiles:
    def test_roundtrip(self, file_manager):
        path = file_manager.create_temp_path()
        with RunFileWriter(path, file_manager) as writer:
            writer.append(b"k1", b"v1")
            writer.append(b"k2", b"")
            writer.append(b"", b"v3")
        records = list(RunFileReader(path, file_manager))
        assert records == [(b"k1", b"v1"), (b"k2", b""), (b"", b"v3")]

    def test_empty_file(self, file_manager):
        path = file_manager.create_temp_path()
        RunFileWriter(path, file_manager).close()
        assert list(RunFileReader(path, file_manager)) == []

    def test_missing_file_reads_empty(self, file_manager):
        reader = RunFileReader(file_manager.create_temp_path())
        assert list(reader) == []

    def test_large_volume(self, file_manager):
        path = file_manager.create_temp_path()
        with RunFileWriter(path, file_manager) as writer:
            for i in range(5000):
                writer.append(b"%08d" % i, b"payload-%d" % i)
        count = 0
        for i, (key, value) in enumerate(RunFileReader(path, file_manager)):
            assert key == b"%08d" % i
            count += 1
        assert count == 5000

    def test_io_counters_recorded(self, file_manager):
        path = file_manager.create_temp_path()
        with RunFileWriter(path, file_manager) as writer:
            writer.append(b"k", b"v")
        list(RunFileReader(path, file_manager))
        assert file_manager.io.disk_write_bytes > 0
        assert file_manager.io.disk_read_bytes > 0

    def test_delete(self, file_manager):
        path = file_manager.create_temp_path()
        with RunFileWriter(path, file_manager) as writer:
            writer.append(b"k", b"v")
        reader = RunFileReader(path)
        reader.delete()
        assert list(reader) == []


class TestReplacementPolicies:
    def repeated_scan_hit_rate(self, file_manager, replacement, num_pages=8, capacity_pages=6, rounds=5):
        cache = BufferCache(
            capacity_pages * 4096, 4096, file_manager, replacement=replacement
        )
        file_id = cache.create_file()
        ids = []
        for i in range(num_pages):
            page = cache.new_page(file_id, PageKind.LEAF)
            page.put(b"k%02d" % i, b"v")
            ids.append(page.page_id)
            cache.unpin(page, dirty=True)
        cache.stats.hits = cache.stats.misses = 0
        for _ in range(rounds):
            for pid in ids:  # the cyclic scan pattern of the FOJ plan
                cache.unpin(cache.pin(pid))
        total = cache.stats.hits + cache.stats.misses
        return cache.stats.hits / total

    def test_mru_resists_sequential_flooding(self, tmp_path):
        from repro.common.accounting import IOCounters
        from repro.hyracks.storage.file_manager import FileManager

        lru_files = FileManager(str(tmp_path / "lru"), IOCounters())
        mru_files = FileManager(str(tmp_path / "mru"), IOCounters())
        lru_rate = self.repeated_scan_hit_rate(lru_files, "lru")
        mru_rate = self.repeated_scan_hit_rate(mru_files, "mru")
        # LRU evicts exactly what the cyclic scan needs next: ~0 hits.
        assert lru_rate < 0.05
        # MRU keeps a stable prefix resident: most accesses hit.
        assert mru_rate > 0.5
        lru_files.destroy()
        mru_files.destroy()

    def test_invalid_policy_rejected(self, file_manager):
        with pytest.raises(ValueError):
            BufferCache(4096, 4096, file_manager, replacement="arc")

    def test_mru_correctness_under_btree(self, tmp_path):
        from repro.common.accounting import IOCounters
        from repro.common.serde import encode_key
        from repro.hyracks.storage.btree import BTree
        from repro.hyracks.storage.file_manager import FileManager

        files = FileManager(str(tmp_path / "mrub"), IOCounters())
        cache = BufferCache(4096 * 3, 4096, files, replacement="mru")
        tree = BTree(cache)
        for i in range(800):
            tree.insert(encode_key(i), b"val-%04d" % i)
        assert [k for k, _ in tree.scan()] == [encode_key(i) for i in range(800)]
        assert tree.lookup(encode_key(777)) == b"val-0777"
        files.destroy()
