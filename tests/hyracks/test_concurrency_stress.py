"""Satellite stress test: 8 threads hammering one buffer cache.

The pool is far larger than the cache budget, so every thread constantly
forces pin misses, dirty writebacks, and evictions of pages other threads
just used. The assertions are the cache's safety contract under
concurrency (DESIGN.md §13):

* **no lost pages** — every committed update is still readable at the
  end, even though each page was spilled and reloaded many times;
* **no double evictions / no accounting drift** — ``cached_bytes`` is
  exactly ``page_size × resident pages`` and never exceeds capacity once
  all pins are released;
* **pin-count invariants** — every pin was matched by exactly one unpin,
  so every resident page ends with ``pin_count == 0``.
"""

import random
import threading

from repro.hyracks.storage.buffer_cache import BufferCache
from repro.hyracks.storage.file_manager import FileManager
from repro.hyracks.storage.pages import PageKind

NUM_THREADS = 8
OPS_PER_THREAD = 400
NUM_PAGES = 24
PAGE_SIZE = 512
CACHE_PAGES = 6  # resident budget far below the working set: constant churn


def test_eight_threads_pin_unpin_evict_spill(tmp_path):
    files = FileManager(str(tmp_path / "stress"))
    cache = BufferCache(CACHE_PAGES * PAGE_SIZE, PAGE_SIZE, files)
    file_id = cache.create_file("stress")
    page_ids = []
    for _ in range(NUM_PAGES):
        page = cache.new_page(file_id, PageKind.DATA)
        page_ids.append(page.page_id)
        cache.unpin(page, dirty=True)

    # committed[(thread, page_no)] = number of increments that thread
    # applied to its private key on that page; rebuilt from disk at the
    # end, so a lost writeback or torn eviction shows up as a mismatch.
    committed = {}
    errors = []
    start = threading.Barrier(NUM_THREADS)

    def worker(thread_id):
        rng = random.Random(1000 + thread_id)
        key = b"t%d" % thread_id
        try:
            start.wait()
            for _ in range(OPS_PER_THREAD):
                page_id = page_ids[rng.randrange(NUM_PAGES)]
                page = cache.pin(page_id)
                try:
                    with page.latch:
                        index = page.find(key)
                        count = (
                            int.from_bytes(page.values[index], "big")
                            if index is not None
                            else 0
                        )
                        page.put(key, (count + 1).to_bytes(4, "big"))
                finally:
                    cache.unpin(page, dirty=True)
                slot = (thread_id, page_id.page_no)
                committed[slot] = committed.get(slot, 0) + 1
        except Exception as error:  # surfaced by the main thread
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(NUM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads), "stress run hung"
    assert not errors, errors

    # Pin-count invariant: every resident page fully unpinned.
    assert all(page.pin_count == 0 for page in cache._pages.values())
    # Accounting invariant: bytes match residency exactly, budget holds.
    assert cache.cached_bytes == cache.num_cached_pages * PAGE_SIZE
    assert cache.cached_bytes <= cache.capacity

    # No lost pages / updates: reload every page (forcing the remaining
    # dirty residents through writeback+read) and compare counters.
    cache.flush_all()
    recovered = {}
    for page_id in page_ids:
        page = cache.pin(page_id)
        try:
            with page.latch:
                for key, value in zip(page.keys, page.values):
                    thread_id = int(key[1:].decode())
                    recovered[(thread_id, page_id.page_no)] = int.from_bytes(
                        value, "big"
                    )
        finally:
            cache.unpin(page)
    assert recovered == committed
    assert sum(recovered.values()) == NUM_THREADS * OPS_PER_THREAD

    # The churn actually exercised the eviction path, not just hits.
    stats = cache.stats.snapshot()
    assert stats["evictions"] > 0
    assert stats["writebacks"] > 0
    assert stats["hits"] + stats["misses"] >= NUM_THREADS * OPS_PER_THREAD
    files.close()
