"""End-to-end tests of job execution on the simulated cluster."""

import pytest

from repro.common.errors import JobFailure, SchedulingError
from repro.hyracks.connectors import (
    MToNPartitioningConnector,
    MToOneAggregatorConnector,
    OneToOneConnector,
)
from repro.hyracks.engine import HyracksCluster
from repro.hyracks.job import JobSpec
from repro.hyracks.operators.aggregate import (
    GlobalAggregateOperator,
    LocalAggregateOperator,
    SumAggregator,
)
from repro.hyracks.operators.func import (
    CollectSinkOperator,
    FilterOperator,
    GeneratorSourceOperator,
    MapOperator,
    UnionOperator,
)
from repro.hyracks.scheduler import AbsoluteLocationConstraint


@pytest.fixture
def cluster(tmp_path):
    with HyracksCluster(num_nodes=3, root_dir=str(tmp_path / "c")) as c:
        yield c


def word_count_job():
    """A classic two-stage job exercising source, shuffle, and sink."""
    documents = {
        0: ["a b a", "c"],
        1: ["b b", "a c"],
        2: [],
    }
    spec = JobSpec("wordcount")
    source = spec.add(
        GeneratorSourceOperator(
            lambda ctx, p: [
                (word, 1) for line in documents[p] for word in line.split()
            ]
        )
    )
    count = spec.add(
        MapOperator(lambda t: t, name="CountStage")
    )
    sink = spec.add(CollectSinkOperator("counts"))
    spec.connect(
        MToNPartitioningConnector(key_fn=lambda t: t[0]), source, count
    )
    spec.connect(OneToOneConnector(), count, sink)
    return spec


class TestExecution:
    def test_pipeline_with_shuffle(self, cluster):
        result = cluster.execute(word_count_job())
        gathered = result.gather("counts")
        totals = {}
        for word, one in gathered:
            totals[word] = totals.get(word, 0) + one
        assert totals == {"a": 3, "b": 3, "c": 2}

    def test_same_key_lands_in_one_partition(self, cluster):
        result = cluster.execute(word_count_job())
        partition_of = {}
        for partition, tuples in result.collected["counts"].items():
            for word, _one in tuples:
                partition_of.setdefault(word, set()).add(partition)
        assert all(len(parts) == 1 for parts in partition_of.values())

    def test_two_stage_aggregate_job(self, cluster):
        spec = JobSpec("sum")
        source = spec.add(
            GeneratorSourceOperator(lambda ctx, p: [p + 1, p + 1])
        )
        local = spec.add(LocalAggregateOperator(SumAggregator()))
        final = spec.add(GlobalAggregateOperator(SumAggregator()))
        sink = spec.add(CollectSinkOperator("total"))
        spec.connect(OneToOneConnector(), source, local)
        spec.connect(MToOneAggregatorConnector(), local, final)
        spec.connect(OneToOneConnector(), final, sink)
        result = cluster.execute(spec)
        assert result.gather("total") == [2 * (1 + 2 + 3)]

    def test_filter_and_union(self, cluster):
        spec = JobSpec("fu")
        evens = spec.add(GeneratorSourceOperator(lambda ctx, p: [0, 2, 4]))
        odds = spec.add(GeneratorSourceOperator(lambda ctx, p: [1, 3, 5]))
        union = spec.add(UnionOperator())
        keep_small = spec.add(FilterOperator(lambda x: x < 3))
        sink = spec.add(CollectSinkOperator("vals"))
        spec.connect(OneToOneConnector(), evens, union)
        spec.connect(OneToOneConnector(), odds, union)
        spec.connect(OneToOneConnector(), union, keep_small)
        spec.connect(OneToOneConnector(), keep_small, sink)
        result = cluster.execute(spec)
        assert sorted(result.gather("vals")) == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_operator_timing_recorded(self, cluster):
        result = cluster.execute(word_count_job())
        assert "GeneratorSource" in result.operator_seconds
        assert result.elapsed >= 0

    def test_absolute_constraint_places_on_node(self, cluster):
        observed = []
        spec = JobSpec("where")
        source = spec.add(
            GeneratorSourceOperator(
                lambda ctx, p: observed.append(ctx.node.node_id) or []
            )
        )
        source.partition_constraint = AbsoluteLocationConstraint(["node2", "node0"])
        cluster.execute(spec)
        assert observed == ["node2", "node0"]

    def test_cycle_detection(self, cluster):
        spec = JobSpec("cycle")
        a = spec.add(MapOperator(lambda t: t))
        b = spec.add(MapOperator(lambda t: t))
        spec.connect(OneToOneConnector(), a, b)
        spec.connect(OneToOneConnector(), b, a)
        with pytest.raises(SchedulingError):
            cluster.execute(spec)


class TestFailures:
    def test_dead_node_breaks_absolute_constraint(self, cluster):
        spec = JobSpec("doomed")
        op = spec.add(GeneratorSourceOperator(lambda ctx, p: []))
        op.partition_constraint = AbsoluteLocationConstraint(["node1"])
        cluster.kill_node("node1")
        with pytest.raises(SchedulingError):
            cluster.execute(spec)

    def test_injected_failure_fails_job(self, cluster):
        cluster.nodes["node0"].inject_failure(after_tasks=0)
        with pytest.raises(JobFailure):
            cluster.execute(word_count_job())
        assert "node0" not in cluster.alive_node_ids()

    def test_cluster_survives_with_remaining_nodes(self, cluster):
        cluster.kill_node("node2")
        result = cluster.execute(word_count_job_for_two())
        assert len(result.gather("out")) == 2

    def test_revive_node(self, cluster):
        cluster.kill_node("node1")
        cluster.revive_node("node1")
        assert cluster.alive_node_ids() == ["node0", "node1", "node2"]

    def test_aggregate_memory_shrinks_with_dead_nodes(self, cluster):
        before = cluster.aggregate_memory_bytes()
        cluster.kill_node("node0")
        assert cluster.aggregate_memory_bytes() == before * 2 // 3


def word_count_job_for_two():
    spec = JobSpec("small")
    source = spec.add(GeneratorSourceOperator(lambda ctx, p: [p]))
    sink = spec.add(CollectSinkOperator("out"))
    spec.connect(OneToOneConnector(), source, sink)
    return spec


class TestAccounting:
    def test_network_bytes_counted(self, tmp_path):
        from repro.common import serde

        with HyracksCluster(num_nodes=2, root_dir=str(tmp_path / "net")) as cluster:
            spec = JobSpec("net")
            source = spec.add(
                GeneratorSourceOperator(lambda ctx, p: [(i, float(i)) for i in range(10)])
            )
            sink = spec.add(CollectSinkOperator("out"))
            spec.connect(
                MToNPartitioningConnector(
                    key_fn=lambda t: t[0],
                    tuple_serde=serde.PairSerde(serde.INT64, serde.FLOAT64),
                ),
                source,
                sink,
            )
            result = cluster.execute(spec)
            assert result.network_io.network_bytes > 0
            assert len(result.gather("out")) == 20

    def test_jobs_executed_counter(self, cluster):
        cluster.execute(word_count_job_for_two())
        assert cluster.jobs_executed == 1
