"""Tests for the connector library."""

import pytest

from repro.common import serde
from repro.hyracks.engine import JobContext
from repro.hyracks.connectors import (
    BroadcastConnector,
    MToNPartitioningConnector,
    MToNPartitioningMergingConnector,
    MToOneAggregatorConnector,
    OneToOneConnector,
)


@pytest.fixture
def ctx():
    return JobContext("test")


PAIR = serde.PairSerde(serde.INT64, serde.INT64)


class TestOneToOne:
    def test_identity_routing(self, ctx):
        outputs = [[(1,)], [(2,)], [(3,)]]
        routed = OneToOneConnector().route(outputs, 3, ctx)
        assert routed == outputs

    def test_arity_mismatch_raises(self, ctx):
        with pytest.raises(ValueError):
            OneToOneConnector().route([[(1,)]], 2, ctx)


class TestMToNPartitioning:
    def test_routes_by_key(self, ctx):
        connector = MToNPartitioningConnector(key_fn=lambda t: t[0])
        outputs = [[(0, "a"), (1, "b")], [(2, "c"), (1, "d")]]
        routed = connector.route(outputs, 2, ctx)
        assert sorted(routed[0]) == [(0, "a"), (2, "c")]
        assert sorted(routed[1]) == [(1, "b"), (1, "d")]

    def test_same_key_same_partition(self, ctx):
        connector = MToNPartitioningConnector(key_fn=lambda t: t[0])
        outputs = [[(k, i) for i, k in enumerate([5, 9, 5, 9, 5])]]
        routed = connector.route(outputs, 4, ctx)
        for batch in routed:
            assert len({key for key, _ in batch}) <= 2

    def test_custom_partition_fn(self, ctx):
        connector = MToNPartitioningConnector(
            key_fn=lambda t: t[0], partition_fn=lambda key, n: 0
        )
        routed = connector.route([[(7, "x")], [(8, "y")]], 3, ctx)
        assert len(routed[0]) == 2
        assert routed[1] == [] and routed[2] == []

    def test_network_accounting_excludes_local(self, ctx):
        connector = MToNPartitioningConnector(
            key_fn=lambda t: t[0],
            tuple_serde=PAIR,
            partition_fn=lambda key, n: key % n,
        )
        # Sender 0 emits a tuple for partition 0 (local) and one for 1.
        connector.route([[(0, 1), (1, 2)]], 2, ctx)
        assert ctx.io.network_messages == 1
        assert ctx.io.network_bytes == PAIR.sizeof((1, 2))


class TestMergingConnector:
    def test_receiver_side_merge_preserves_order(self, ctx):
        connector = MToNPartitioningMergingConnector(
            key_fn=lambda t: t[0],
            sort_key_fn=lambda t: t[0],
            partition_fn=lambda key, n: 0,
        )
        outputs = [[(1, "a"), (4, "b")], [(2, "c"), (3, "d")]]
        routed = connector.route(outputs, 1, ctx)
        assert [key for key, _ in routed[0]] == [1, 2, 3, 4]

    def test_unsorted_sender_rejected(self, ctx):
        connector = MToNPartitioningMergingConnector(key_fn=lambda t: t[0])
        with pytest.raises(ValueError):
            connector.route([[(2, "a"), (1, "b")]], 1, ctx)

    def test_sender_side_materialization_accounted(self, ctx):
        connector = MToNPartitioningMergingConnector(
            key_fn=lambda t: t[0], tuple_serde=PAIR, partition_fn=lambda k, n: 0
        )
        connector.route([[(1, 1)], [(2, 2)]], 1, ctx)
        # Materializing policy writes then re-reads the stream locally.
        assert ctx.io.disk_write_bytes > 0
        assert ctx.io.disk_read_bytes == ctx.io.disk_write_bytes


class TestAggregatorConnector:
    def test_funnels_to_partition_zero(self, ctx):
        connector = MToOneAggregatorConnector()
        routed = connector.route([[(1,)], [(2,)], [(3,)]], 3, ctx)
        assert sorted(routed[0]) == [(1,), (2,), (3,)]
        assert routed[1] == [] and routed[2] == []


class TestBroadcast:
    def test_replicates_everywhere(self, ctx):
        connector = BroadcastConnector()
        routed = connector.route([[(1,)], [(2,)]], 3, ctx)
        for batch in routed:
            assert sorted(batch) == [(1,), (2,)]
