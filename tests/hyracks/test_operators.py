"""Tests for sort, group-by, join, aggregate, and index operators."""

import random

import pytest

from repro.common import serde
from repro.common.errors import StorageError
from repro.common.serde import encode_key
from repro.hyracks.engine import HyracksCluster, JobContext, TaskContext
from repro.hyracks.operators.aggregate import (
    BoolAndAggregator,
    CountAggregator,
    GlobalAggregateOperator,
    LocalAggregateOperator,
    MaxAggregator,
    MinAggregator,
    SumAggregator,
)
from repro.hyracks.operators.groupby import (
    HashSortGroupByOperator,
    ListAggregator,
    PreclusteredGroupByOperator,
    SortGroupByOperator,
)
from repro.hyracks.operators.index_ops import (
    OP_DELETE,
    OP_INSERT,
    IndexBulkLoadOperator,
    IndexInsertDeleteOperator,
    IndexScanOperator,
    get_index,
    register_index,
)
from repro.hyracks.operators.join import (
    IndexFullOuterJoinOperator,
    IndexLeftOuterJoinOperator,
    MergeChooseOperator,
)
from repro.hyracks.operators.sort import ExternalSortOperator
from repro.hyracks.storage.btree import BTree

PAIR = serde.PairSerde(serde.INT64, serde.FLOAT64)


@pytest.fixture
def cluster(tmp_path):
    with HyracksCluster(num_nodes=1, root_dir=str(tmp_path / "cluster")) as c:
        yield c


@pytest.fixture
def ctx(cluster):
    node = cluster.nodes["node0"]
    return TaskContext(node, JobContext("test"), 0, 1)


def sort_key(item):
    return encode_key(item[0])


class TestExternalSort:
    def test_in_memory_sort(self, ctx):
        op = ExternalSortOperator(sort_key, PAIR)
        data = [(3, 0.3), (1, 0.1), (2, 0.2)]
        out = op.run(ctx, 0, [data])[op.OUT]
        assert out == [(1, 0.1), (2, 0.2), (3, 0.3)]

    def test_spilling_sort_matches_sorted(self, ctx):
        op = ExternalSortOperator(sort_key, PAIR, memory_limit_bytes=256)
        data = [(i, float(i)) for i in range(500)]
        random.Random(11).shuffle(data)
        out = op.run(ctx, 0, [data])[op.OUT]
        assert out == sorted(data)
        assert ctx.io.disk_write_bytes > 0  # runs actually spilled

    def test_empty_input(self, ctx):
        op = ExternalSortOperator(sort_key, PAIR)
        assert op.run(ctx, 0, [[]])[op.OUT] == []

    def test_duplicate_keys_preserved(self, ctx):
        op = ExternalSortOperator(sort_key, PAIR, memory_limit_bytes=128)
        data = [(1, 0.5)] * 20 + [(0, 0.1)] * 20
        out = op.run(ctx, 0, [list(data)])[op.OUT]
        assert len(out) == 40
        assert out[0] == (0, 0.1)
        assert out[-1] == (1, 0.5)


def list_aggregator():
    return ListAggregator(
        value_fn=lambda t: t[1],
        output_fn=lambda key, values: (key, sorted(values)),
        value_serde=serde.FLOAT64,
    )


GROUPBY_CASES = [
    ("sort", lambda limit: SortGroupByOperator(sort_key, list_aggregator(), PAIR, memory_limit_bytes=limit)),
    ("hashsort", lambda limit: HashSortGroupByOperator(sort_key, list_aggregator(), memory_limit_bytes=limit)),
]


class TestGroupBy:
    @pytest.mark.parametrize("name,factory", GROUPBY_CASES)
    def test_in_memory_grouping(self, ctx, name, factory):
        op = factory(1 << 20)
        data = [(1, 0.1), (2, 0.2), (1, 0.3)]
        out = op.run(ctx, 0, [data])[op.OUT]
        assert out == [(encode_key(1), [0.1, 0.3]), (encode_key(2), [0.2])]

    @pytest.mark.parametrize("name,factory", GROUPBY_CASES)
    def test_spilling_grouping(self, ctx, name, factory):
        op = factory(256)
        data = [(i % 17, float(i)) for i in range(600)]
        random.Random(5).shuffle(data)
        out = op.run(ctx, 0, [data])[op.OUT]
        assert len(out) == 17
        assert [k for k, _ in out] == sorted(k for k, _ in out)
        total = sum(len(values) for _, values in out)
        assert total == 600

    @pytest.mark.parametrize("name,factory", GROUPBY_CASES)
    def test_output_sorted_by_key(self, ctx, name, factory):
        op = factory(1 << 20)
        data = [(9, 0.9), (1, 0.1), (5, 0.5)]
        out = op.run(ctx, 0, [data])[op.OUT]
        assert [k for k, _ in out] == [encode_key(1), encode_key(5), encode_key(9)]

    def test_preclustered(self, ctx):
        op = PreclusteredGroupByOperator(sort_key, list_aggregator())
        data = [(1, 0.1), (1, 0.2), (3, 0.3)]
        out = op.run(ctx, 0, [data])[op.OUT]
        assert out == [(encode_key(1), [0.1, 0.2]), (encode_key(3), [0.3])]

    def test_preclustered_rejects_unclustered(self, ctx):
        op = PreclusteredGroupByOperator(sort_key, list_aggregator())
        with pytest.raises(StorageError):
            op.run(ctx, 0, [[(1, 0.1), (2, 0.2), (1, 0.3)]])

    def test_spill_without_serde_raises(self, ctx):
        aggregator = ListAggregator(lambda t: t[1], lambda k, v: (k, v), value_serde=None)
        op = HashSortGroupByOperator(sort_key, aggregator, memory_limit_bytes=1)
        with pytest.raises(StorageError):
            op.run(ctx, 0, [[(1, 0.1), (2, 0.2)]])


class TestScalarAggregators:
    def test_bool_and(self):
        agg = BoolAndAggregator()
        state = agg.create()
        for value in (True, True, False):
            state = agg.step(state, value)
        assert state is False
        assert agg.merge(True, True) is True

    def test_sum_min_max_count(self):
        assert SumAggregator().step(5, 3) == 8
        assert MinAggregator().step(None, 9) == 9
        assert MinAggregator().merge(4, None) == 4
        assert MaxAggregator().step(2, 7) == 7
        assert CountAggregator().step(3, "anything") == 4

    def test_two_stage_pipeline(self, ctx):
        local = LocalAggregateOperator(SumAggregator())
        partials = [
            local.run(ctx, p, [[1, 2, 3]])[local.OUT][0] for p in range(3)
        ]
        global_op = GlobalAggregateOperator(SumAggregator())
        out = global_op.run(ctx, 0, [partials])[global_op.OUT]
        assert out == [18]

    def test_global_with_no_input(self, ctx):
        global_op = GlobalAggregateOperator(SumAggregator())
        assert global_op.run(ctx, 1, [[]])[global_op.OUT] == []


def build_vertex_index(ctx, entries, name="vertex"):
    tree = BTree(ctx.buffer_cache)
    tree.bulk_load([(encode_key(vid), value) for vid, value in entries])
    register_index(ctx, name, 0, tree)
    return tree


class TestIndexOperators:
    def test_bulk_load_and_scan(self, ctx):
        load = IndexBulkLoadOperator("idx", lambda c, p: BTree(c.buffer_cache))
        pairs = [(encode_key(i), b"v%d" % i) for i in range(10)]
        load.run(ctx, 0, [pairs])
        scan = IndexScanOperator("idx")
        out = scan.run(ctx, 0, [])[scan.OUT]
        assert out == pairs

    def test_bulk_load_replaces_existing(self, ctx):
        load = IndexBulkLoadOperator("idx", lambda c, p: BTree(c.buffer_cache))
        load.run(ctx, 0, [[(encode_key(1), b"old")]])
        load.run(ctx, 0, [[(encode_key(2), b"new")]])
        assert get_index(ctx, "idx", 0).lookup(encode_key(1)) is None
        assert get_index(ctx, "idx", 0).lookup(encode_key(2)) == b"new"

    def test_insert_delete(self, ctx):
        build_vertex_index(ctx, [(1, b"a"), (2, b"b")], name="idx")
        op = IndexInsertDeleteOperator("idx")
        op.run(ctx, 0, [[(OP_INSERT, encode_key(3), b"c"), (OP_DELETE, encode_key(1), None)]])
        index = get_index(ctx, "idx", 0)
        assert index.lookup(encode_key(1)) is None
        assert index.lookup(encode_key(3)) == b"c"

    def test_unknown_opcode_raises(self, ctx):
        build_vertex_index(ctx, [(1, b"a")], name="idx")
        op = IndexInsertDeleteOperator("idx")
        with pytest.raises(StorageError):
            op.run(ctx, 0, [[("upsert", encode_key(1), b"x")]])

    def test_missing_index_raises(self, ctx):
        scan = IndexScanOperator("ghost")
        with pytest.raises(StorageError):
            scan.run(ctx, 0, [])


class TestJoins:
    def test_full_outer_join_all_cases(self, ctx):
        build_vertex_index(ctx, [(1, b"v1"), (3, b"v3"), (4, b"v4")])
        op = IndexFullOuterJoinOperator("vertex")
        messages = [(encode_key(3), b"m3"), (encode_key(5), b"m5")]
        out = op.run(ctx, 0, [messages])[op.OUT]
        assert out == [
            (encode_key(1), None, b"v1"),       # vertex without message
            (encode_key(3), b"m3", b"v3"),      # inner match
            (encode_key(4), None, b"v4"),       # vertex without message
            (encode_key(5), b"m5", None),       # message without vertex
        ]

    def test_full_outer_join_empty_messages(self, ctx):
        build_vertex_index(ctx, [(1, b"v1")])
        op = IndexFullOuterJoinOperator("vertex")
        out = op.run(ctx, 0, [[]])[op.OUT]
        assert out == [(encode_key(1), None, b"v1")]

    def test_left_outer_join_probes(self, ctx):
        build_vertex_index(ctx, [(1, b"v1"), (2, b"v2")])
        op = IndexLeftOuterJoinOperator("vertex")
        stream = [(encode_key(2), b"m2"), (encode_key(9), b"m9")]
        out = op.run(ctx, 0, [stream])[op.OUT]
        assert out == [
            (encode_key(2), b"m2", b"v2"),
            (encode_key(9), b"m9", None),
        ]

    def test_merge_choose_prefers_messages(self, ctx):
        op = MergeChooseOperator()
        messages = [(1, b"m1"), (3, b"m3")]
        live = [(2, None), (3, None)]
        out = op.run(ctx, 0, [messages, live])[op.OUT]
        assert out == [(1, b"m1"), (2, None), (3, b"m3")]

    def test_merge_choose_empty_sides(self, ctx):
        op = MergeChooseOperator()
        assert op.run(ctx, 0, [[], []])[op.OUT] == []
        assert op.run(ctx, 0, [[(1, b"m")], []])[op.OUT] == [(1, b"m")]
        assert op.run(ctx, 0, [[], [(1, None)]])[op.OUT] == [(1, None)]
