"""Property-based tests over the dataflow building blocks."""

from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common import serde
from repro.common.accounting import IOCounters
from repro.common.serde import encode_key
from repro.hyracks.connectors import (
    MToNPartitioningConnector,
    MToNPartitioningMergingConnector,
    MToOneAggregatorConnector,
)
from repro.hyracks.engine import HyracksCluster, JobContext, TaskContext
from repro.hyracks.operators.groupby import (
    HashSortGroupByOperator,
    ListAggregator,
    SortGroupByOperator,
)
from repro.hyracks.operators.sort import ExternalSortOperator
from repro.hyracks.storage.buffer_cache import BufferCache
from repro.hyracks.storage.file_manager import FileManager

PAIR = serde.PairSerde(serde.INT64, serde.INT64)

key_value_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=-100, max_value=100),
    ),
    max_size=200,
)


class TestConnectorProperties:
    @given(
        batches=st.lists(key_value_lists, min_size=1, max_size=4),
        consumers=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_partitioning_preserves_multiset(self, batches, consumers):
        connector = MToNPartitioningConnector(key_fn=lambda t: t[0])
        routed = connector.route(batches, consumers, None)
        sent = Counter(t for batch in batches for t in batch)
        received = Counter(t for batch in routed for t in batch)
        assert sent == received

    @given(
        batches=st.lists(key_value_lists, min_size=1, max_size=4),
        consumers=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_partitioning_is_key_deterministic(self, batches, consumers):
        connector = MToNPartitioningConnector(key_fn=lambda t: t[0])
        routed = connector.route(batches, consumers, None)
        location = {}
        for partition, batch in enumerate(routed):
            for key, _value in batch:
                assert location.setdefault(key, partition) == partition

    @given(
        batches=st.lists(key_value_lists, min_size=1, max_size=4),
        consumers=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_merging_connector_sorted_output(self, batches, consumers):
        sorted_batches = [sorted(batch, key=lambda t: t[0]) for batch in batches]
        connector = MToNPartitioningMergingConnector(
            key_fn=lambda t: t[0], sort_key_fn=lambda t: t[0]
        )
        routed = connector.route(sorted_batches, consumers, None)
        for batch in routed:
            keys = [t[0] for t in batch]
            assert keys == sorted(keys)
        sent = Counter(t for batch in sorted_batches for t in batch)
        received = Counter(t for batch in routed for t in batch)
        assert sent == received

    @given(batches=st.lists(key_value_lists, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_aggregator_collects_everything_at_zero(self, batches):
        connector = MToOneAggregatorConnector()
        routed = connector.route(batches, 3, None)
        assert Counter(routed[0]) == Counter(
            t for batch in batches for t in batch
        )
        assert routed[1] == [] and routed[2] == []


def make_ctx(tmp_root):
    cluster = HyracksCluster(num_nodes=1, root_dir=str(tmp_root))
    return cluster, TaskContext(cluster.nodes["node0"], JobContext("prop"), 0, 1)


class TestOperatorProperties:
    @given(
        data=key_value_lists,
        budget=st.integers(min_value=64, max_value=4096),
    )
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_external_sort_matches_sorted(self, tmp_path_factory, data, budget):
        cluster, ctx = make_ctx(tmp_path_factory.mktemp("sortp"))
        try:
            op = ExternalSortOperator(
                lambda t: encode_key(t[0]), PAIR, memory_limit_bytes=budget
            )
            result = op.run(ctx, 0, [list(data)])[op.OUT]
            assert [t[0] for t in result] == sorted(t[0] for t in data)
            assert Counter(result) == Counter(data)
        finally:
            cluster.close()

    @given(
        data=key_value_lists,
        budget=st.integers(min_value=64, max_value=4096),
        strategy=st.sampled_from(["sort", "hashsort"]),
    )
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_groupby_matches_reference(self, tmp_path_factory, data, budget, strategy):
        """Spill timing and strategy never change the grouped contents."""
        cluster, ctx = make_ctx(tmp_path_factory.mktemp("groupp"))
        try:
            aggregator = ListAggregator(
                value_fn=lambda t: t[1],
                output_fn=lambda key, values: (key, sorted(values)),
                value_serde=serde.INT64,
            )
            if strategy == "sort":
                op = SortGroupByOperator(
                    lambda t: encode_key(t[0]), aggregator, PAIR, memory_limit_bytes=budget
                )
            else:
                op = HashSortGroupByOperator(
                    lambda t: encode_key(t[0]), aggregator, memory_limit_bytes=budget
                )
            result = op.run(ctx, 0, [list(data)])[op.OUT]
            reference = {}
            for key, value in data:
                reference.setdefault(encode_key(key), []).append(value)
            expected = [
                (key, sorted(values)) for key, values in sorted(reference.items())
            ]
            assert result == expected
        finally:
            cluster.close()


class TestCacheProperty:
    @given(
        operations=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.binary(min_size=0, max_size=40),
            ),
            max_size=150,
        ),
        capacity_pages=st.integers(min_value=1, max_value=6),
    )
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_btree_correct_under_any_cache_size(
        self, tmp_path_factory, operations, capacity_pages
    ):
        """Evictions at any cache size never lose or corrupt records."""
        from repro.hyracks.storage.btree import BTree

        root = tmp_path_factory.mktemp("cachep")
        files = FileManager(str(root), IOCounters())
        cache = BufferCache(capacity_pages * 4096, 4096, files)
        tree = BTree(cache)
        model = {}
        for key_int, value in operations:
            key = encode_key(key_int)
            tree.insert(key, value)
            model[key] = value
        assert dict(tree.scan()) == model
        files.destroy()
