"""Satellite property tests: sequential vs parallel runtime equivalence.

For seeded random inputs, the external sort and all four group-by
strategies of the paper's taxonomy — {sort, hashsort} × {re-grouping
partitioning connector, pre-clustered merging connector} — must produce
**bit-identical per-partition outputs** when the same job runs on a
sequential cluster and a thread-pool cluster (same ``(budget, group-by,
connector)`` class, DESIGN.md §13), and every strategy must preserve the
input's combined ``(key, value)`` multiset.

Memory budgets are deliberately tiny so each run exercises the spill and
multi-run merge paths, not just the in-memory fast path.
"""

import random
from collections import Counter

import pytest

from repro.common import serde
from repro.hyracks.connectors import (
    MToNPartitioningConnector,
    MToNPartitioningMergingConnector,
    OneToOneConnector,
)
from repro.hyracks.engine import HyracksCluster
from repro.hyracks.job import JobSpec
from repro.hyracks.operators.func import (
    CollectSinkOperator,
    GeneratorSourceOperator,
)
from repro.hyracks.operators.groupby import (
    HashSortGroupByOperator,
    ListAggregator,
    PreclusteredGroupByOperator,
    SortGroupByOperator,
)
from repro.hyracks.operators.sort import ExternalSortOperator

PAIR = serde.PairSerde(serde.INT64, serde.INT64)
NUM_NODES = 4
TUPLES_PER_PARTITION = 120
KEY_SPACE = 40  # far fewer keys than tuples: every key repeats
SPILL_BUDGET = 256  # bytes; ~16 tuples per in-memory run


def generate_input(seed, partition):
    rng = random.Random(100_000 * seed + partition)
    return [
        (rng.randrange(KEY_SPACE), rng.randrange(1_000_000))
        for _ in range(TUPLES_PER_PARTITION)
    ]


def expected_multiset(seed):
    return Counter(
        pair
        for partition in range(NUM_NODES)
        for pair in generate_input(seed, partition)
    )


def make_source(seed):
    return GeneratorSourceOperator(
        lambda ctx, partition: generate_input(seed, partition)
    )


def values_aggregator():
    """Collect each key's values into a tuple; key decoded for output."""
    return ListAggregator(
        value_fn=lambda t: t[1],
        output_fn=lambda key, values: (serde.decode_key(key), tuple(values)),
        value_serde=serde.INT64,
    )


def group_key(t):
    return serde.encode_key(t[0])


def sort_regroup_job(seed):
    """Partitioning connector, then a full sort-based group-by."""
    spec = JobSpec("sort-regroup")
    source = spec.add(make_source(seed))
    group = spec.add(
        SortGroupByOperator(
            group_key, values_aggregator(), PAIR, memory_limit_bytes=SPILL_BUDGET
        )
    )
    sink = spec.add(CollectSinkOperator("out"))
    spec.connect(MToNPartitioningConnector(key_fn=lambda t: t[0]), source, group)
    spec.connect(OneToOneConnector(), group, sink)
    return spec


def hashsort_regroup_job(seed):
    """Partitioning connector, then a full hashsort group-by."""
    spec = JobSpec("hashsort-regroup")
    source = spec.add(make_source(seed))
    group = spec.add(
        HashSortGroupByOperator(
            group_key, values_aggregator(), memory_limit_bytes=SPILL_BUDGET
        )
    )
    sink = spec.add(CollectSinkOperator("out"))
    spec.connect(MToNPartitioningConnector(key_fn=lambda t: t[0]), source, group)
    spec.connect(OneToOneConnector(), group, sink)
    return spec


def sort_merged_job(seed):
    """Sender-side external sort, merging connector, one-pass group-by."""
    spec = JobSpec("sort-merged")
    source = spec.add(make_source(seed))
    local_sort = spec.add(
        ExternalSortOperator(group_key, PAIR, memory_limit_bytes=SPILL_BUDGET)
    )
    group = spec.add(PreclusteredGroupByOperator(group_key, values_aggregator()))
    sink = spec.add(CollectSinkOperator("out"))
    spec.connect(OneToOneConnector(), source, local_sort)
    spec.connect(
        MToNPartitioningMergingConnector(
            key_fn=lambda t: t[0], sort_key_fn=group_key, tuple_serde=PAIR
        ),
        local_sort,
        group,
    )
    spec.connect(OneToOneConnector(), group, sink)
    return spec


def hashsort_merged_job(seed):
    """Sender-side partial group-by, merging connector, partial merge."""
    spec = JobSpec("hashsort-merged")
    source = spec.add(make_source(seed))
    local_group = spec.add(
        HashSortGroupByOperator(
            group_key,
            ListAggregator(
                value_fn=lambda t: t[1],
                output_fn=lambda key, values: (key, tuple(values)),
                value_serde=serde.INT64,
            ),
            memory_limit_bytes=SPILL_BUDGET,
        )
    )
    final_group = spec.add(
        PreclusteredGroupByOperator(
            lambda t: t[0],
            ListAggregator(
                value_fn=lambda t: t[1],
                output_fn=lambda key, chunks: (
                    serde.decode_key(key),
                    tuple(value for chunk in chunks for value in chunk),
                ),
            ),
        )
    )
    sink = spec.add(CollectSinkOperator("out"))
    spec.connect(OneToOneConnector(), source, local_group)
    spec.connect(
        MToNPartitioningMergingConnector(
            key_fn=lambda t: t[0], sort_key_fn=lambda t: t[0]
        ),
        local_group,
        final_group,
    )
    spec.connect(OneToOneConnector(), final_group, sink)
    return spec


def external_sort_job(seed):
    """Shuffle then spill-heavy external sort; no grouping."""
    spec = JobSpec("external-sort")
    source = spec.add(make_source(seed))
    sort = spec.add(
        ExternalSortOperator(
            lambda t: serde.encode_key(t[0]) + serde.encode_key(t[1]),
            PAIR,
            memory_limit_bytes=SPILL_BUDGET,
        )
    )
    sink = spec.add(CollectSinkOperator("out"))
    spec.connect(MToNPartitioningConnector(key_fn=lambda t: t[0]), source, sort)
    spec.connect(OneToOneConnector(), sort, sink)
    return spec


GROUP_BY_STRATEGIES = {
    "sort-regroup": sort_regroup_job,
    "hashsort-regroup": hashsort_regroup_job,
    "sort-merged": sort_merged_job,
    "hashsort-merged": hashsort_merged_job,
}


def run_collected(build_job, seed, parallelism, tmp_path, tag):
    with HyracksCluster(
        num_nodes=NUM_NODES,
        parallelism=parallelism,
        root_dir=str(tmp_path / ("%s-p%d" % (tag, parallelism))),
    ) as cluster:
        result = cluster.execute(build_job(seed))
    return result.collected["out"]


def flatten_groups(collected):
    return Counter(
        (key, value)
        for partition in collected.values()
        for key, values in partition
        for value in values
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("strategy", sorted(GROUP_BY_STRATEGIES))
def test_group_by_strategy_parallel_equals_sequential(strategy, seed, tmp_path):
    build_job = GROUP_BY_STRATEGIES[strategy]
    sequential = run_collected(build_job, seed, 1, tmp_path, strategy)
    parallel = run_collected(build_job, seed, 4, tmp_path, strategy)
    assert parallel == sequential  # bit-identical per-partition outputs
    assert flatten_groups(sequential) == expected_multiset(seed)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_external_sort_parallel_equals_sequential(seed, tmp_path):
    sequential = run_collected(external_sort_job, seed, 1, tmp_path, "xsort")
    parallel = run_collected(external_sort_job, seed, 4, tmp_path, "xsort")
    assert parallel == sequential
    for tuples in sequential.values():
        assert tuples == sorted(tuples)
    combined = Counter(
        pair for tuples in sequential.values() for pair in tuples
    )
    assert combined == expected_multiset(seed)


@pytest.mark.parametrize("seed", [0, 1])
def test_strategies_agree_on_grouped_content(seed, tmp_path):
    """All four strategies produce the same key → value-multiset map."""
    per_strategy = {}
    for strategy, build_job in GROUP_BY_STRATEGIES.items():
        collected = run_collected(build_job, seed, 4, tmp_path, "x" + strategy)
        grouped = {}
        for partition in collected.values():
            for key, values in partition:
                assert key not in grouped  # each key lands on one partition
                grouped[key] = Counter(values)
        per_strategy[strategy] = grouped
    reference = per_strategy["sort-regroup"]
    for strategy, grouped in per_strategy.items():
        assert grouped == reference, strategy
