"""Correctness tests for the LSM B-tree."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.accounting import IOCounters
from repro.common.errors import StorageError
from repro.common.serde import encode_key
from repro.hyracks.storage.buffer_cache import BufferCache
from repro.hyracks.storage.file_manager import FileManager
from repro.hyracks.storage.lsm_btree import LSMBTree


@pytest.fixture
def lsm(buffer_cache):
    return LSMBTree(buffer_cache, memory_budget_bytes=1 << 12, max_components=3)


def key(i):
    return encode_key(i)


class TestBasicOperations:
    def test_insert_lookup(self, lsm):
        lsm.insert(key(1), b"one")
        assert lsm.lookup(key(1)) == b"one"
        assert lsm.lookup(key(2)) is None

    def test_overwrite_in_memory(self, lsm):
        lsm.insert(key(1), b"a")
        lsm.insert(key(1), b"b")
        assert lsm.lookup(key(1)) == b"b"

    def test_delete_with_tombstone(self, lsm):
        lsm.insert(key(1), b"x")
        assert lsm.delete(key(1))
        assert lsm.lookup(key(1)) is None
        assert not lsm.delete(key(1))

    def test_newer_component_wins(self, lsm):
        lsm.insert(key(1), b"old")
        lsm.flush_memory_component()
        lsm.insert(key(1), b"new")
        lsm.flush_memory_component()
        assert lsm.lookup(key(1)) == b"new"

    def test_delete_shadows_flushed_value(self, lsm):
        lsm.insert(key(1), b"x")
        lsm.flush_memory_component()
        lsm.delete(key(1))
        assert lsm.lookup(key(1)) is None
        lsm.flush_memory_component()
        assert lsm.lookup(key(1)) is None


class TestFlushAndMerge:
    def test_automatic_flush_on_budget(self, lsm):
        for i in range(2000):
            lsm.insert(key(i), b"payload-%05d" % i)
        assert lsm.flushes > 0
        assert lsm.memory_component_bytes < lsm.memory_budget
        assert lsm.lookup(key(0)) == b"payload-00000"
        assert lsm.lookup(key(1999)) == b"payload-01999"

    def test_merge_bounds_component_count(self, lsm):
        for i in range(5000):
            lsm.insert(key(i), b"v%05d" % i)
        lsm.flush_memory_component()
        assert lsm.num_disk_components <= lsm.max_components
        assert lsm.merges > 0

    def test_merge_drops_tombstones(self, buffer_cache):
        lsm = LSMBTree(buffer_cache, memory_budget_bytes=1 << 20, max_components=1)
        lsm.insert(key(1), b"a")
        lsm.insert(key(2), b"b")
        lsm.flush_memory_component()
        lsm.delete(key(1))
        lsm.flush_memory_component()  # second component triggers merge
        assert lsm.num_disk_components == 1
        assert dict(lsm.scan()) == {key(2): b"b"}

    def test_data_survives_merge(self, lsm):
        expected = {}
        for i in range(3000):
            value = b"val-%05d" % i
            lsm.insert(key(i), value)
            expected[key(i)] = value
        for i in range(0, 3000, 3):
            lsm.delete(key(i))
            del expected[key(i)]
        lsm.flush_memory_component()
        assert dict(lsm.scan()) == expected


class TestScan:
    def test_scan_merges_memory_and_disk(self, lsm):
        lsm.insert(key(2), b"disk")
        lsm.flush_memory_component()
        lsm.insert(key(1), b"mem")
        assert list(lsm.scan()) == [(key(1), b"mem"), (key(2), b"disk")]

    def test_scan_range(self, lsm):
        for i in range(100):
            lsm.insert(key(i), b"")
            if i % 10 == 0:
                lsm.flush_memory_component()
        keys = [k for k, _ in lsm.scan(low=key(20), high=key(30))]
        assert keys == [key(i) for i in range(20, 30)]

    def test_scan_skips_tombstones(self, lsm):
        lsm.insert(key(1), b"a")
        lsm.insert(key(2), b"b")
        lsm.flush_memory_component()
        lsm.delete(key(1))
        assert list(lsm.scan()) == [(key(2), b"b")]

    def test_scan_with_updates_during_iteration(self, lsm):
        for i in range(500):
            lsm.insert(key(i), b"%04d" % i)
        seen = []
        for k, _v in lsm.scan():
            seen.append(k)
            lsm.insert(k, b"NEWV")
        assert seen == [key(i) for i in range(500)]

    def test_len_counts_live_keys(self, lsm):
        for i in range(10):
            lsm.insert(key(i), b"")
        lsm.delete(key(3))
        assert len(lsm) == 9


class TestBulkLoad:
    def test_bulk_load(self, lsm):
        lsm.bulk_load([(key(i), b"v%d" % i) for i in range(500)])
        assert lsm.lookup(key(250)) == b"v250"
        assert lsm.num_disk_components == 1

    def test_bulk_load_rejects_non_empty(self, lsm):
        lsm.insert(key(1), b"")
        with pytest.raises(StorageError):
            lsm.bulk_load([(key(2), b"")])

    def test_updates_after_bulk_load(self, lsm):
        lsm.bulk_load([(key(i), b"orig") for i in range(100)])
        lsm.insert(key(50), b"updated")
        lsm.delete(key(51))
        assert lsm.lookup(key(50)) == b"updated"
        assert lsm.lookup(key(51)) is None
        assert lsm.lookup(key(52)) == b"orig"


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=60),
        ),
        max_size=200,
    ),
    budget=st.integers(min_value=64, max_value=2048),
)
def test_lsm_matches_dict_model(tmp_path_factory, operations, budget):
    """Property: flush/merge timing never changes observable contents."""
    root = tmp_path_factory.mktemp("lsmprop")
    files = FileManager(str(root), IOCounters())
    cache = BufferCache(1 << 20, 4096, files)
    lsm = LSMBTree(cache, memory_budget_bytes=budget, max_components=2)
    model = {}
    for op, i in operations:
        k = key(i)
        if op == "insert":
            value = b"v%d" % i
            lsm.insert(k, value)
            model[k] = value
        else:
            lsm.delete(k)
            model.pop(k, None)
    assert dict(lsm.scan()) == model
    for k, value in model.items():
        assert lsm.lookup(k) == value
    files.destroy()


class TestMergePolicies:
    def test_invalid_policy_rejected(self, buffer_cache):
        with pytest.raises(ValueError):
            LSMBTree(buffer_cache, merge_policy="leveled")

    def test_tiered_keeps_newer_components(self, buffer_cache):
        lsm = LSMBTree(
            buffer_cache,
            memory_budget_bytes=1 << 8,
            max_components=4,
            merge_policy="tiered",
        )
        for i in range(3000):
            lsm.insert(key(i), b"v%05d" % i)
        lsm.flush_memory_component()
        assert lsm.merges > 0
        # Tiered merging never collapses everything into one component.
        assert lsm.num_disk_components >= 2

    def test_tiered_and_full_agree_on_contents(self, buffer_cache):
        import random as _random

        rng = _random.Random(5)
        operations = []
        for i in range(2500):
            if rng.random() < 0.2:
                operations.append(("delete", rng.randrange(300)))
            else:
                operations.append(("insert", rng.randrange(300)))
        results = []
        for policy in ("full", "tiered"):
            lsm = LSMBTree(
                buffer_cache,
                memory_budget_bytes=1 << 9,
                max_components=3,
                merge_policy=policy,
                name="mp-%s" % policy,
            )
            for op, i in operations:
                if op == "insert":
                    lsm.insert(key(i), b"v%d" % i)
                else:
                    lsm.delete(key(i))
            results.append(dict(lsm.scan()))
        assert results[0] == results[1]

    def test_tiered_tombstones_respected_across_tiers(self, buffer_cache):
        lsm = LSMBTree(
            buffer_cache,
            memory_budget_bytes=1 << 20,
            max_components=3,
            merge_policy="tiered",
        )
        lsm.insert(key(1), b"old")
        lsm.flush_memory_component()
        lsm.delete(key(1))
        lsm.flush_memory_component()
        lsm.insert(key(2), b"x")
        lsm.flush_memory_component()
        lsm.insert(key(3), b"y")
        lsm.flush_memory_component()  # count exceeds max -> tiered merge
        assert lsm.lookup(key(1)) is None
        assert dict(lsm.scan()) == {key(2): b"x", key(3): b"y"}
