"""Shared fixtures: node-local storage plumbing, graphs, and chaos tools."""

import pytest

from repro.common.accounting import IOCounters
from repro.hyracks.storage.buffer_cache import BufferCache
from repro.hyracks.storage.file_manager import FileManager


@pytest.fixture
def file_manager(tmp_path):
    manager = FileManager(str(tmp_path / "node0"), IOCounters())
    yield manager
    manager.destroy()


@pytest.fixture
def buffer_cache(file_manager):
    """A cache big enough to hold small test trees entirely in memory."""
    return BufferCache(capacity_bytes=1 << 20, page_size=4096, file_manager=file_manager)


@pytest.fixture
def tiny_buffer_cache(file_manager):
    """A cache that can only hold a few pages, forcing eviction/spill."""
    return BufferCache(capacity_bytes=4096 * 3, page_size=4096, file_manager=file_manager)


# ---------------------------------------------------------------------
# chaos harness (repro.chaos)
# ---------------------------------------------------------------------
@pytest.fixture
def chaos_graph():
    """The small BTC-style graph the chaos suites share."""
    from repro.graphs.generators import btc_graph

    return list(btc_graph(80, seed=3))


@pytest.fixture
def differential_checker(chaos_graph):
    """``differential_checker("sssp")`` -> a ready DifferentialChecker."""
    from repro.chaos import DifferentialChecker

    def make(algorithm, **kwargs):
        kwargs.setdefault("num_nodes", 3)
        return DifferentialChecker(algorithm, chaos_graph, **kwargs)

    return make


@pytest.fixture
def fault_injector():
    """``fault_injector(cluster, seed=7)`` -> an armed FaultInjector.

    Detaches automatically at teardown so one test's faults can never
    leak into another test's cluster use.
    """
    from repro.chaos import FaultInjector, FaultPlan

    injectors = []

    def arm(cluster, seed=7, plan=None, **plan_kwargs):
        if plan is None:
            plan = FaultPlan.random(seed, cluster.node_ids(), **plan_kwargs)
        injector = FaultInjector(plan).attach(cluster)
        injectors.append(injector)
        return injector

    yield arm
    for injector in injectors:
        injector.detach()
