"""Shared fixtures: node-local storage plumbing and small graphs."""

import pytest

from repro.common.accounting import IOCounters
from repro.hyracks.storage.buffer_cache import BufferCache
from repro.hyracks.storage.file_manager import FileManager


@pytest.fixture
def file_manager(tmp_path):
    manager = FileManager(str(tmp_path / "node0"), IOCounters())
    yield manager
    manager.destroy()


@pytest.fixture
def buffer_cache(file_manager):
    """A cache big enough to hold small test trees entirely in memory."""
    return BufferCache(capacity_bytes=1 << 20, page_size=4096, file_manager=file_manager)


@pytest.fixture
def tiny_buffer_cache(file_manager):
    """A cache that can only hold a few pages, forcing eviction/spill."""
    return BufferCache(capacity_bytes=4096 * 3, page_size=4096, file_manager=file_manager)
