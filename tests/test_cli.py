"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, lines


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope", "--input", "x"])

    def test_figures_choices(self):
        args = build_parser().parse_args(["figures", "table3", "figure12a"])
        assert args.which == ["table3", "figure12a"]


class TestGenerate:
    def test_generate_chain(self, tmp_path):
        out_dir = str(tmp_path / "g")
        code, lines = run_cli(
            ["generate", "--family", "chain", "--vertices", "12", "--out", out_dir,
             "--files", "3"]
        )
        assert code == 0
        files = sorted(os.listdir(out_dir))
        assert files == ["part-00000", "part-00001", "part-00002"]
        total = sum(
            len(open(os.path.join(out_dir, f)).read().splitlines()) for f in files
        )
        assert total == 12

    def test_generate_btc_degree(self, tmp_path):
        out_dir = str(tmp_path / "btc")
        code, _ = run_cli(
            ["generate", "--family", "btc", "--vertices", "200", "--out", out_dir]
        )
        assert code == 0


class TestRun:
    @pytest.fixture
    def chain_dir(self, tmp_path):
        out_dir = str(tmp_path / "in")
        run_cli(["generate", "--family", "chain", "--vertices", "15", "--out", out_dir])
        return out_dir

    def test_run_sssp_end_to_end(self, chain_dir, tmp_path):
        out_dir = str(tmp_path / "out")
        code, lines = run_cli(
            ["run", "sssp", "--input", chain_dir, "--output", out_dir, "--nodes", "2"]
        )
        assert code == 0
        assert any("supersteps" in line for line in lines)
        values = {}
        for name in os.listdir(out_dir):
            for line in open(os.path.join(out_dir, name)):
                fields = line.split()
                values[int(fields[0])] = float(fields[1])
        assert values[14] == pytest.approx(14.0)

    def test_run_with_plan_overrides(self, chain_dir):
        code, lines = run_cli(
            ["run", "sssp", "--input", chain_dir, "--nodes", "2",
             "--join", "foj", "--groupby", "sort", "--connector", "merged",
             "--storage", "lsm"]
        )
        assert code == 0
        assert any("full-outer-join/sort/m-to-n-partitioning-merging/lsm-btree" in line
                   for line in lines)

    def test_run_with_optimizer(self, chain_dir):
        code, lines = run_cli(
            ["run", "sssp", "--input", chain_dir, "--nodes", "2", "--optimize"]
        )
        assert code == 0

    def test_run_pagerank_reports_counts(self, chain_dir):
        code, lines = run_cli(
            ["run", "pagerank", "--input", chain_dir, "--nodes", "2",
             "--iterations", "3"]
        )
        assert code == 0
        assert any("vertices: 15" in line for line in lines)

    def test_missing_input_directory(self, tmp_path):
        empty = str(tmp_path / "empty")
        os.makedirs(empty)
        code, lines = run_cli(["run", "sssp", "--input", empty])
        assert code == 2
        assert any("no input files" in line for line in lines)


class TestTrace:
    @pytest.fixture
    def chain_dir(self, tmp_path):
        out_dir = str(tmp_path / "in")
        run_cli(["generate", "--family", "chain", "--vertices", "15", "--out", out_dir])
        return out_dir

    def test_run_with_trace_writes_chrome_json(self, chain_dir, tmp_path):
        trace_path = str(tmp_path / "trace.json")
        code, lines = run_cli(
            ["run", "pagerank", "--input", chain_dir, "--nodes", "2",
             "--iterations", "2", "--trace", trace_path]
        )
        assert code == 0
        assert any("trace written to" in line for line in lines)
        with open(trace_path) as handle:
            document = json.load(handle)
        names = {event["name"] for event in document["traceEvents"]}
        assert "pregelix:pagerank" in names
        assert "superstep:1" in names
        assert document["otherData"]["sim_seconds"] > 0

    def test_trace_subcommand(self, chain_dir, tmp_path):
        trace_path = str(tmp_path / "out.json")
        code, lines = run_cli(
            ["trace", "sssp", "--input", chain_dir, "--nodes", "2",
             "--out", trace_path]
        )
        assert code == 0
        with open(trace_path) as handle:
            document = json.load(handle)
        assert document["traceEvents"]

    def test_trace_jsonl_sidecar(self, chain_dir, tmp_path):
        jsonl_path = str(tmp_path / "telemetry.jsonl")
        code, _lines = run_cli(
            ["run", "sssp", "--input", chain_dir, "--nodes", "2",
             "--trace-jsonl", jsonl_path]
        )
        assert code == 0
        with open(jsonl_path) as handle:
            records = [json.loads(line) for line in handle]
        assert {"span", "metric"} <= {record["type"] for record in records}

    def test_stats_prints_telemetry_summary(self, chain_dir):
        code, lines = run_cli(
            ["run", "sssp", "--input", chain_dir, "--nodes", "2", "--stats"]
        )
        assert code == 0
        assert any("-- telemetry summary --" in line for line in lines)


class TestLoc:
    def test_loc_prints_table(self):
        code, lines = run_cli(["loc"])
        assert code == 0
        assert any("Pregel-specific core" in line for line in lines)


class TestEdgeListInput:
    def test_run_with_edge_list(self, tmp_path):
        in_dir = tmp_path / "edges"
        in_dir.mkdir()
        (in_dir / "part-0").write_text("0 1\n1 2\n2 3\n")
        out_dir = str(tmp_path / "out")
        code, lines = run_cli(
            ["run", "sssp", "--input", str(in_dir), "--output", out_dir,
             "--nodes", "2", "--input-format", "edges"]
        )
        assert code == 0
        values = {}
        for name in os.listdir(out_dir):
            for line in open(os.path.join(out_dir, name)):
                fields = line.split()
                values[int(fields[0])] = float(fields[1])
        assert values[3] == 3.0


class TestExplain:
    def test_explain_prints_plans(self):
        code, lines = run_cli(["explain", "pagerank"])
        assert code == 0
        text = "\n".join(lines)
        assert "plan signature" in text
        assert "-- superstep plan --" in text
        assert "IndexFullOuterJoin" in text
        assert "MsgWrite" in text

    def test_explain_loj_shows_vid_machinery(self):
        code, lines = run_cli(["explain", "sssp", "--join", "loj"])
        assert code == 0
        text = "\n".join(lines)
        assert "MergeChoose" in text
        assert "IndexLeftOuterJoin" in text
        assert "VidScan" in text

    def test_explain_merged_connector(self):
        code, lines = run_cli(
            ["explain", "pagerank", "--connector", "merged", "--groupby", "sort"]
        )
        assert code == 0
        text = "\n".join(lines)
        assert "MToNPartitioningMergingConnector" in text
        assert "ReceiverPreclusteredGroupBy" in text


class TestChaos:
    def test_quick_smoke_passes(self):
        code, lines = run_cli(["chaos", "--quick", "--vertices", "60"])
        assert code == 0
        assert any(line.startswith("chaos sssp: OK") for line in lines)

    def test_single_cell_reproduction_command_shape(self):
        code, lines = run_cli(
            [
                "chaos",
                "--algorithm", "cc",
                "--plans", "loj/hashsort/unmerged/lsm",
                "--budgets", "spill",
                "--fault-seed", "7",
                "--vertices", "60",
            ]
        )
        assert code == 0
        assert any("chaos cc: OK" in line for line in lines)

    def test_show_schedule_prints_fault_plan(self):
        code, lines = run_cli(
            [
                "chaos",
                "--quick",
                "--vertices", "60",
                "--show-schedule",
                "--fault-seed", "9",
            ]
        )
        assert code == 0
        assert any("fault plan (seed=9" in line for line in lines)

    def test_no_faults_runs_single_schedule(self):
        code, lines = run_cli(
            [
                "chaos",
                "--algorithm", "sssp",
                "--plans", "foj/sort/unmerged/btree",
                "--budgets", "roomy",
                "--no-faults",
                "--vertices", "60",
                "--verbose",
            ]
        )
        assert code == 0
        # verbose mode prints the one cell, then the OK summary
        assert any("budget=roomy" in line for line in lines)
        assert any("1 plans x 1 budgets x 1 schedules" in line for line in lines)

    def test_bad_plan_signature_rejected(self):
        with pytest.raises(ValueError):
            run_cli(["chaos", "--plans", "bogus"])

    def test_durability_action_pool(self):
        code, lines = run_cli(
            [
                "chaos",
                "--algorithm", "sssp",
                "--plans", "foj/sort/unmerged/btree",
                "--budgets", "roomy",
                "--fault-seed", "5",
                "--actions", "corrupt,torn_write,transient_io",
                "--vertices", "60",
                "--show-schedule",
            ]
        )
        assert code == 0
        text = "\n".join(lines)
        assert "chaos sssp: OK" in text
        # The printed schedule draws from the requested durability pool.
        assert any(
            action in text for action in ("corrupt", "torn_write", "transient_io")
        )


class TestCheckpoints:
    def test_verify_clean_run(self):
        code, lines = run_cli(
            ["checkpoints", "verify", "--vertices", "60", "--interval", "2"]
        )
        assert code == 0
        text = "\n".join(lines)
        assert "committed checkpoints:" in text
        assert "VERIFIED" in text and "FAILED" not in text
        assert "recovery would use: checkpoint" in text

    @pytest.mark.parametrize("damage", ["corrupt", "tear"])
    def test_verify_detects_injected_damage(self, damage):
        code, lines = run_cli(
            [
                "checkpoints", "verify",
                "--vertices", "60",
                "--interval", "2",
                "--damage", damage,
            ]
        )
        assert code == 0  # exit 0 means the audit *caught* the damage
        text = "\n".join(lines)
        assert "injected %s" % damage in text
        assert "FAILED" in text
        assert "damage detection: OK" in text
        # The damaged newest checkpoint is not the one recovery would use.
        assert "recovery would use: checkpoint" in text


class TestRunJson:
    @pytest.fixture
    def chain_dir(self, tmp_path):
        out_dir = str(tmp_path / "in")
        run_cli(["generate", "--family", "chain", "--vertices", "15", "--out", out_dir])
        return out_dir

    def test_json_document_shape(self, chain_dir, tmp_path):
        out_dir = str(tmp_path / "out")
        code, lines = run_cli(
            ["run", "sssp", "--input", chain_dir, "--output", out_dir,
             "--nodes", "2", "--json"]
        )
        assert code == 0
        document = json.loads("\n".join(lines))
        assert document["algorithm"] == "sssp"
        assert document["num_vertices"] == 15
        assert document["supersteps"] > 0
        assert len(document["results"]) == 15
        assert document["superstep_stats"][0]["superstep"] == 1
        # --json replaces the prose entirely: the output is one JSON blob.
        assert lines[0].lstrip().startswith("{")

    def test_json_without_output_omits_results(self, chain_dir):
        code, lines = run_cli(
            ["run", "cc", "--input", chain_dir, "--nodes", "2", "--json"]
        )
        assert code == 0
        document = json.loads("\n".join(lines))
        assert "results" not in document
        assert document["algorithm"] == "cc"

    def test_json_matches_served_document_shape(self, chain_dir):
        """repro run --json and GET /jobs/<id>/result share the formatter."""
        from repro.graphs.generators import chain_graph
        from repro.serve import JobService

        code, lines = run_cli(
            ["run", "cc", "--input", chain_dir, "--nodes", "2", "--json"]
        )
        assert code == 0
        direct = json.loads("\n".join(lines))

        service = JobService(num_nodes=2, workers=1)
        try:
            service.add_dataset("chain", vertices=chain_graph(15))
            service.start()
            record = service.submit(
                {"tenant": "t", "algorithm": "cc", "dataset": "chain"}
            )
            record.wait(120)
            served = record.result
        finally:
            service.shutdown(timeout=120)
        # Identical keys; identical results modulo the served copy
        # always carrying the dumped lines.
        assert set(direct) | {"results"} == set(served)
        assert direct["aggregate"] == served["aggregate"]
        assert direct["num_edges"] == served["num_edges"]


class TestPipeline:
    @pytest.fixture
    def chain_dir(self, tmp_path):
        out_dir = str(tmp_path / "in")
        run_cli(["generate", "--family", "chain", "--vertices", "15", "--out", out_dir])
        return out_dir

    def test_compatible_jobs_share_one_segment(self, chain_dir, tmp_path):
        out_dir = str(tmp_path / "out")
        code, lines = run_cli(
            ["pipeline", "cc", "reachability", "--input", chain_dir,
             "--output", out_dir, "--nodes", "2"]
        )
        assert code == 0
        text = "\n".join(lines)
        assert "2 jobs in 1 segment(s)" in text
        assert os.listdir(out_dir)

    def test_json_reports_each_job(self, chain_dir):
        code, lines = run_cli(
            ["pipeline", "cc", "cc", "--input", chain_dir, "--nodes", "2",
             "--json"]
        )
        assert code == 0
        document = json.loads("\n".join(lines))
        assert document["segments"] == 1
        assert [job["algorithm"] for job in document["jobs"]] == ["cc", "cc"]
        assert all(job["supersteps"] > 0 for job in document["jobs"])

    def test_incompatible_jobs_split_segments(self, chain_dir):
        # cc carries int component ids, sssp float distances: a type
        # boundary forces materialization between segments.
        code, lines = run_cli(
            ["pipeline", "cc", "sssp", "--input", chain_dir, "--nodes", "2",
             "--json"]
        )
        assert code == 0
        document = json.loads("\n".join(lines))
        assert document["segments"] == 2

    def test_empty_input_fails(self, tmp_path):
        empty = str(tmp_path / "empty")
        os.makedirs(empty)
        code, lines = run_cli(["pipeline", "cc", "--input", empty])
        assert code == 2


class TestServeCommand:
    def test_smoke_passes_end_to_end(self):
        code, lines = run_cli(["serve", "--smoke"])
        assert code == 0
        text = "\n".join(lines)
        assert "serve smoke: PASS" in text
        assert "over-quota is a structured 429" in text
        assert "repeat is a cache hit" in text

    def test_dataset_spec_parsing(self):
        from repro.cli import _parse_serve_options

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--dataset", "web=/tmp/web",
             "--quota", "alice=2:1:5:0.5", "--quota", "bob=1"]
        )
        datasets, quotas = _parse_serve_options(args)
        assert datasets == [("web", "/tmp/web")]
        assert quotas["alice"].max_running == 1
        assert quotas["alice"].memory_fraction == 0.5
        assert quotas["bob"].weight == 1.0

    def test_bad_dataset_spec_is_an_error(self):
        from repro.cli import _parse_serve_options

        args = build_parser().parse_args(["serve", "--dataset", "nodir"])
        with pytest.raises(ValueError):
            _parse_serve_options(args)

    def test_top_action_parses(self):
        args = build_parser().parse_args(
            ["serve", "top", "--url", "http://h:1", "--interval", "0.5",
             "--count", "3"]
        )
        assert args.action == "top"
        assert args.url == "http://h:1"
        assert args.interval == 0.5
        assert args.count == 3

    def test_top_unreachable_service_fails_cleanly(self):
        code, lines = run_cli(
            ["serve", "top", "--url", "http://127.0.0.1:1", "--count", "1"]
        )
        assert code == 1
        assert "unreachable" in "\n".join(lines)

    def test_render_top_frame(self):
        from repro.cli import _render_top, _sparkline

        stats = {
            "state": "serving", "uptime_seconds": 12.0, "nodes": 3,
            "queue_depth": 2, "running": ["a"], "jobs_executed": 5,
            "rejected": 1, "shed": 0, "jobs": {"succeeded": 4},
            "result_cache": {"entries": 2, "hits": 3, "misses": 1},
            "journal": {"appends": 9, "avg_append_seconds": 0.002},
            "latency": {"alice": {"e2e": {
                "count": 4, "p50": 0.1, "p95": 0.2, "p99": 0.3}}},
        }
        history = {"samples": [
            {"queue_depth": d, "cache_hit_ratio": 0.5,
             "journal_append_seconds": 0.001,
             "virtual_time_by_tenant": {"alice": 1000.0}}
            for d in (0, 1, 2)
        ]}
        text = "\n".join(_render_top("http://h:1", stats, history))
        assert "serving" in text
        assert "queue 2" in text
        assert "75% hit" in text
        assert "latency alice" in text and "p95" in text
        assert "queue depth" in text and "now 2" in text
        assert "vt=1000" in text
        # Sparklines scale to the window peak and tolerate None gaps.
        assert _sparkline([]) == ""
        assert _sparkline([0.0, None, 1.0])[-1] == _sparkline([5, 10])[-1]
