"""Tests for the process-centric baseline engines.

Two things matter: (1) every engine computes the same answers as
Pregelix (they run the same vertex programs), and (2) each engine's
memory model fails in the architecture-specific order the paper
observed — Hama/GraphLab first, then Giraph, while Pregelix survives.
"""

import math

import pytest

from repro.algorithms import connected_components as cc
from repro.algorithms import pagerank, sssp
from repro.baselines import (
    GiraphLikeEngine,
    GraphLabLikeEngine,
    GraphXLikeEngine,
    HamaLikeEngine,
)
from repro.common.errors import MemoryBudgetExceeded
from repro.graphs.generators import btc_graph, chain_graph, webmap_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS

BIG = 64 << 20

ENGINE_FACTORIES = [
    ("giraph-mem", lambda n, b: GiraphLikeEngine(n, b, mode="mem")),
    ("giraph-ooc", lambda n, b: GiraphLikeEngine(n, b, mode="ooc")),
    ("graphlab", lambda n, b: GraphLabLikeEngine(n, b)),
    ("hama", lambda n, b: HamaLikeEngine(n, b)),
    ("graphx", lambda n, b: GraphXLikeEngine(n, b)),
]


@pytest.fixture(scope="module")
def dfs():
    dfs = MiniDFS(datanodes=["n0", "n1", "n2"])
    write_graph_to_dfs(dfs, "/in/btc", btc_graph(120, seed=2), num_files=3)
    write_graph_to_dfs(dfs, "/in/web", webmap_graph(150, seed=1), num_files=3)
    write_graph_to_dfs(dfs, "/in/chain", chain_graph(15), num_files=2)
    return dfs


class TestSemanticEquivalence:
    @pytest.mark.parametrize("name,factory", ENGINE_FACTORIES)
    def test_sssp_distances(self, dfs, name, factory):
        outcome = factory(3, BIG).run(sssp.build_job(source_id=0), dfs, "/in/chain")
        for vid in range(15):
            assert outcome.vertices[vid] == pytest.approx(float(vid))

    @pytest.mark.parametrize("name,factory", ENGINE_FACTORIES)
    def test_pagerank_matches_across_engines(self, dfs, name, factory):
        reference = GiraphLikeEngine(3, BIG).run(
            pagerank.build_job(iterations=5), dfs, "/in/web"
        )
        outcome = factory(3, BIG).run(pagerank.build_job(iterations=5), dfs, "/in/web")
        for vid, rank in reference.vertices.items():
            assert outcome.vertices[vid] == pytest.approx(rank, abs=1e-12)

    @pytest.mark.parametrize("name,factory", ENGINE_FACTORIES)
    def test_cc_labels(self, dfs, name, factory):
        outcome = factory(3, BIG).run(
            cc.build_job(), dfs, "/in/btc", parse_line=cc.parse_line
        )
        # Each component's label must be the component's minimum vid.
        labels = outcome.vertices
        assert all(labels[vid] <= vid for vid in labels)

    def test_matches_pregelix_output(self, dfs, tmp_path):
        from repro.hyracks.engine import HyracksCluster
        from repro.pregelix import PregelixDriver

        with HyracksCluster(num_nodes=3, root_dir=str(tmp_path / "c")) as cluster:
            pdfs = MiniDFS(datanodes=cluster.node_ids())
            write_graph_to_dfs(pdfs, "/in/btc", btc_graph(120, seed=2), num_files=3)
            driver = PregelixDriver(cluster, pdfs)
            driver.run(sssp.build_job(source_id=0), "/in/btc", output_path="/out/px")
            px = {}
            for line in driver.read_output("/out/px"):
                fields = line.split()
                px[int(fields[0])] = float(fields[1])
        outcome = GiraphLikeEngine(3, BIG).run(sssp.build_job(source_id=0), dfs, "/in/btc")
        for vid, dist in px.items():
            if math.isinf(dist):
                assert math.isinf(outcome.vertices[vid])
            else:
                assert outcome.vertices[vid] == pytest.approx(dist)


class TestMemoryModels:
    def find_failure_budget(self, factory, dfs, path, job_factory, budgets):
        """Largest budget (from the sorted list) at which the engine dies."""
        failing = 0
        for budget in budgets:
            try:
                factory(3, budget).run(job_factory(), dfs, path, parse_line=None)
            except MemoryBudgetExceeded:
                failing = budget
        return failing

    def test_each_engine_oome_under_pressure(self, dfs):
        for name, factory in ENGINE_FACTORIES:
            with pytest.raises(MemoryBudgetExceeded):
                factory(3, 8_000).run(
                    pagerank.build_job(iterations=5), dfs, "/in/web"
                )

    def test_failure_threshold_ordering(self, dfs):
        """GraphX/Hama/GraphLab die at larger budgets than Giraph-mem.

        (A larger failing budget = fails on smaller datasets, the paper's
        ordering on the x-axis of Figure 10.)
        """
        budgets = [8_000, 16_000, 32_000, 64_000, 128_000, 256_000, 512_000]
        thresholds = {}
        for name, factory in ENGINE_FACTORIES:
            thresholds[name] = self.find_failure_budget(
                factory, dfs, "/in/web", lambda: pagerank.build_job(iterations=5), budgets
            )
        assert thresholds["hama"] >= thresholds["giraph-mem"]
        assert thresholds["graphlab"] >= thresholds["giraph-mem"]
        assert thresholds["graphx"] >= thresholds["giraph-mem"]

    def test_giraph_ooc_outlives_mem_on_vertex_heavy_data(self, dfs):
        """Spilled vertices buy ooc mode headroom over mem mode."""
        budgets = [8_000, 16_000, 32_000, 64_000, 128_000]
        mem_fail = self.find_failure_budget(
            lambda n, b: GiraphLikeEngine(n, b, mode="mem"),
            dfs,
            "/in/btc",
            lambda: sssp.build_job(source_id=0),
            budgets,
        )
        ooc_fail = self.find_failure_budget(
            lambda n, b: GiraphLikeEngine(n, b, mode="ooc"),
            dfs,
            "/in/btc",
            lambda: sssp.build_job(source_id=0),
            budgets,
        )
        assert ooc_fail <= mem_fail

    def test_failed_budget_reports_component(self, dfs):
        with pytest.raises(MemoryBudgetExceeded) as info:
            GiraphLikeEngine(3, 8_000).run(sssp.build_job(), dfs, "/in/btc")
        assert info.value.budget == 8_000

    def test_peak_memory_reported(self, dfs):
        outcome = GiraphLikeEngine(3, BIG).run(sssp.build_job(), dfs, "/in/chain")
        assert 0 < outcome.peak_memory_bytes < BIG


class TestOutcomeAccounting:
    def test_superstep_timing(self, dfs):
        outcome = GiraphLikeEngine(3, BIG).run(sssp.build_job(), dfs, "/in/chain")
        assert len(outcome.superstep_seconds) == outcome.supersteps
        assert outcome.total_seconds >= outcome.load_seconds
        assert outcome.avg_iteration_seconds > 0

    def test_max_supersteps_respected(self, dfs):
        outcome = GiraphLikeEngine(3, BIG).run(
            sssp.build_job(source_id=0), dfs, "/in/chain", max_supersteps=3
        )
        assert outcome.supersteps == 3

    def test_aggregate_surfaced(self, dfs):
        from repro.algorithms import triangle_counting as tri

        write_graph_to_dfs(
            dfs,
            "/in/tri",
            iter(
                [
                    (0, None, [(1, 1.0), (2, 1.0)]),
                    (1, None, [(0, 1.0), (2, 1.0)]),
                    (2, None, [(0, 1.0), (1, 1.0)]),
                ]
            ),
            num_files=1,
        )
        outcome = GiraphLikeEngine(2, BIG).run(
            tri.build_job(), dfs, "/in/tri", parse_line=tri.parse_line
        )
        assert outcome.aggregate == 1

    def test_mutations_supported(self, dfs):
        from repro.algorithms import graph_cleaning as gc

        write_graph_to_dfs(dfs, "/in/path", chain_graph(8), num_files=2)
        outcome = GiraphLikeEngine(2, BIG).run(
            gc.build_job(), dfs, "/in/path", parse_line=gc.parse_line
        )
        assert len(outcome.vertices) == 1
        assert list(outcome.vertices.values()) == [8]
